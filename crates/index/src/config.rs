//! Index construction configuration.

use crate::error::IndexError;
use rtk_rwr::{BcaParams, RwrParams};

/// How hub nodes are chosen (paper §4.1.1).
#[derive(Clone, Debug, PartialEq)]
pub enum HubSelection {
    /// Union of the `b` largest in-degree and `b` largest out-degree nodes —
    /// the paper's method.
    DegreeBased {
        /// Per-direction selection size `B`.
        b: usize,
    },
    /// Caller-provided hub ids.
    Explicit(Vec<u32>),
    /// Berkhin's greedy BCA-driven selection (ablation baseline; slow).
    Greedy {
        /// Number of hubs to select.
        count: usize,
        /// Probe RNG seed.
        seed: u64,
    },
    /// No hubs: plain partial BCA per node.
    None,
}

/// How the exact hub proximity vectors `p_h` are computed (Alg. 1 line 2:
/// *"by power method or BCA"*).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HubSolver {
    /// Forward power method to tolerance `ε` — near-zero mass deficit.
    PowerMethod(RwrParams),
    /// Exhaustive-ish BCA — faster on huge graphs, leaves a tracked deficit
    /// of up to `residue_threshold` per hub.
    Bca(BcaParams),
}

/// Full configuration for [`crate::ReverseIndex::build`].
#[derive(Clone, Debug, PartialEq)]
pub struct IndexConfig {
    /// `K`: the largest `k` any query may use (paper default 200).
    pub max_k: usize,
    /// Per-node BCA parameters (`α`, `η`, `δ`).
    pub bca: BcaParams,
    /// Hub selection strategy.
    pub hub_selection: HubSelection,
    /// Hub vector solver.
    pub hub_solver: HubSolver,
    /// Rounding threshold `ω` applied to hub vectors (§4.1.3); `0` disables.
    pub rounding_threshold: f64,
    /// Worker threads for construction; `0` = available parallelism.
    pub threads: usize,
    /// Number of contiguous node-range shards the index is partitioned
    /// into; `0` and `1` both mean a single shard. Sharding, like
    /// threading, may only change wall time and storage layout — never
    /// answers (clamped to the node count at build time).
    pub shards: usize,
}

impl Default for IndexConfig {
    /// Paper defaults: `K = 200`, `η = 1e-4`, `δ = 0.1`, `ω = 1e-6`,
    /// degree-based hubs with `B = 50`, hub vectors by power method.
    fn default() -> Self {
        Self {
            max_k: 200,
            bca: BcaParams::default(),
            hub_selection: HubSelection::DegreeBased { b: 50 },
            hub_solver: HubSolver::PowerMethod(RwrParams::default()),
            rounding_threshold: 1e-6,
            threads: 0,
            shards: 1,
        }
    }
}

impl IndexConfig {
    /// Validates ranges and cross-field consistency (the hub solver must use
    /// the same restart probability as the per-node BCA, or the stored hub
    /// vectors would describe a different random walk).
    pub fn validate(&self) -> Result<(), IndexError> {
        if self.max_k == 0 {
            return Err(IndexError::InvalidConfig("max_k must be ≥ 1".into()));
        }
        if !(self.rounding_threshold >= 0.0 && self.rounding_threshold.is_finite()) {
            return Err(IndexError::InvalidConfig(format!(
                "rounding_threshold must be a finite non-negative number, got {}",
                self.rounding_threshold
            )));
        }
        if self.bca.alpha <= 0.0 || self.bca.alpha >= 1.0 {
            return Err(IndexError::InvalidConfig(format!(
                "bca.alpha must lie in (0,1), got {}",
                self.bca.alpha
            )));
        }
        let hub_alpha = match self.hub_solver {
            HubSolver::PowerMethod(p) => p.alpha,
            HubSolver::Bca(p) => p.alpha,
        };
        if (hub_alpha - self.bca.alpha).abs() > 1e-12 {
            return Err(IndexError::InvalidConfig(format!(
                "hub solver alpha {hub_alpha} differs from bca alpha {}",
                self.bca.alpha
            )));
        }
        if let HubSelection::Explicit(ids) = &self.hub_selection {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != ids.len() {
                return Err(IndexError::InvalidConfig("explicit hub list has duplicates".into()));
            }
        }
        Ok(())
    }

    /// The restart probability shared by every solver in this config.
    pub fn alpha(&self) -> f64 {
        self.bca.alpha
    }

    /// Resolved worker-thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        }
    }

    /// Resolved shard count for a graph of `node_count` nodes: at least one
    /// shard, and never more shards than nodes.
    pub fn effective_shards(&self, node_count: usize) -> usize {
        self.shards.max(1).min(node_count.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let c = IndexConfig::default();
        c.validate().unwrap();
        assert_eq!(c.max_k, 200);
        assert_eq!(c.bca.propagation_threshold, 1e-4);
        assert_eq!(c.bca.residue_threshold, 0.1);
        assert_eq!(c.rounding_threshold, 1e-6);
    }

    #[test]
    fn rejects_zero_k() {
        let c = IndexConfig { max_k: 0, ..Default::default() };
        assert!(matches!(c.validate(), Err(IndexError::InvalidConfig(_))));
    }

    #[test]
    fn rejects_negative_rounding() {
        let c = IndexConfig { rounding_threshold: -1.0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_mismatched_alphas() {
        let c = IndexConfig {
            hub_solver: HubSolver::PowerMethod(RwrParams::with_alpha(0.5)),
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_explicit_hubs() {
        let c =
            IndexConfig { hub_selection: HubSelection::Explicit(vec![1, 1]), ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn effective_shards_clamps() {
        let c = IndexConfig { shards: 0, ..Default::default() };
        assert_eq!(c.effective_shards(10), 1);
        let c = IndexConfig { shards: 4, ..Default::default() };
        assert_eq!(c.effective_shards(10), 4);
        assert_eq!(c.effective_shards(2), 2);
        assert_eq!(c.effective_shards(0), 1);
    }

    #[test]
    fn effective_threads_resolves() {
        let c = IndexConfig { threads: 3, ..Default::default() };
        assert_eq!(c.effective_threads(), 3);
        let c = IndexConfig { threads: 0, ..Default::default() };
        assert!(c.effective_threads() >= 1);
    }
}
