//! Node-range sharding of the index.
//!
//! The paper's two-phase query screens every node `0..n` independently, so
//! the per-node state is embarrassingly partitionable. A [`ShardMap`] cuts
//! the id space into `S` contiguous ranges; each [`IndexShard`] owns the
//! [`NodeState`]s of one range. Shards are built in parallel, persisted
//! individually (see [`crate::storage`]), and scanned independently by the
//! query layer — with a serial cross-shard merge committing refinements, so
//! the shard count, like the thread count, may only change wall time, never
//! answers.

use crate::error::IndexError;
use crate::node_state::NodeState;

/// Partition of the node id space `0..n` into contiguous shard ranges.
///
/// Stored as the start offset of every shard (`starts[0] == 0`, strictly
/// increasing), so `shard_of` is one binary search and ranges are implicit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    node_count: usize,
    starts: Vec<u32>,
}

impl ShardMap {
    /// Splits `0..node_count` into `shards` near-even contiguous ranges
    /// (the first `node_count % shards` ranges get one extra node). The
    /// shard count is clamped to `[1, max(node_count, 1)]` so every shard
    /// is non-empty.
    pub fn even(node_count: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(node_count.max(1));
        let base = node_count / shards;
        let extra = node_count % shards;
        let mut starts = Vec::with_capacity(shards);
        let mut at = 0usize;
        for i in 0..shards {
            starts.push(at as u32);
            at += base + usize::from(i < extra);
        }
        debug_assert_eq!(at, node_count);
        Self { node_count, starts }
    }

    /// Splits `0..node_count` into `shards` contiguous ranges of roughly
    /// equal **total weight** — `weights[u]` is typically node `u`'s
    /// out-degree, making this the degree-balanced layout behind
    /// `rtk shard split --balance edges`. Falls back to even node splits
    /// when the total weight is zero. Boundaries are clamped so every shard
    /// keeps at least one node; like every repartition, the layout never
    /// changes answers, only how work distributes across shards.
    ///
    /// # Panics
    /// Panics if `weights.len() != node_count`.
    pub fn balanced(node_count: usize, shards: usize, weights: &[u64]) -> Self {
        assert_eq!(weights.len(), node_count, "one weight per node");
        let shards = shards.max(1).min(node_count.max(1));
        let mut prefix = Vec::with_capacity(node_count + 1);
        let mut total = 0u64;
        prefix.push(0u64);
        for &w in weights {
            total += w;
            prefix.push(total);
        }
        if total == 0 {
            return Self::even(node_count, shards);
        }
        let mut starts = Vec::with_capacity(shards);
        starts.push(0u32);
        for part in 1..shards {
            let target = total * part as u64 / shards as u64;
            // Smallest node whose weight prefix reaches the target, clamped
            // so starts stay strictly increasing and every later shard can
            // still get one node.
            let cut = prefix.partition_point(|&p| p < target).min(node_count);
            let lo = *starts.last().expect("starts never empty") as usize + 1;
            let hi = node_count - (shards - part);
            starts.push(cut.clamp(lo, hi) as u32);
        }
        Self { node_count, starts }
    }

    /// Reassembles a map from persisted start offsets, validating shape.
    pub fn from_starts(node_count: usize, starts: Vec<u32>) -> Result<Self, IndexError> {
        if starts.is_empty() {
            return Err(IndexError::InvalidConfig("shard map has no shards".into()));
        }
        if starts[0] != 0 {
            return Err(IndexError::InvalidConfig(format!(
                "shard map must start at node 0, got {}",
                starts[0]
            )));
        }
        if starts.windows(2).any(|w| w[0] >= w[1]) {
            return Err(IndexError::InvalidConfig(
                "shard starts must be strictly increasing".into(),
            ));
        }
        if let Some(&last) = starts.last() {
            if node_count > 0 && last as usize >= node_count {
                return Err(IndexError::InvalidConfig(format!(
                    "shard start {last} out of range for {node_count} nodes"
                )));
            }
        }
        Ok(Self { node_count, starts })
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.starts.len()
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Start offsets, one per shard (`starts[0] == 0`).
    pub fn starts(&self) -> &[u32] {
        &self.starts
    }

    /// The shard owning node `u`.
    #[inline]
    pub fn shard_of(&self, u: u32) -> usize {
        debug_assert!((u as usize) < self.node_count);
        // partition_point returns the count of starts ≤ u; the owning shard
        // is the last one starting at or before u.
        self.starts.partition_point(|&s| s <= u) - 1
    }

    /// Global node-id range of shard `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<u32> {
        let lo = self.starts[i];
        let hi = self.starts.get(i + 1).copied().unwrap_or(self.node_count as u32);
        lo..hi
    }
}

/// One shard: the [`NodeState`]s of a contiguous node-id range.
///
/// All node ids in its API are **global**; the shard translates to local
/// offsets internally.
#[derive(Clone, Debug)]
pub struct IndexShard {
    id: usize,
    node_lo: u32,
    states: Vec<NodeState>,
}

impl IndexShard {
    /// Assembles a shard from its id, first global node id, and states.
    pub fn new(id: usize, node_lo: u32, states: Vec<NodeState>) -> Self {
        Self { id, node_lo, states }
    }

    /// The shard's position in the [`ShardMap`].
    pub fn id(&self) -> usize {
        self.id
    }

    /// First global node id owned by this shard.
    pub fn node_lo(&self) -> u32 {
        self.node_lo
    }

    /// One past the last global node id owned by this shard.
    pub fn node_hi(&self) -> u32 {
        self.node_lo + self.states.len() as u32
    }

    /// Global node-id range owned by this shard.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.node_lo..self.node_hi()
    }

    /// Number of nodes in this shard.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the shard owns no nodes (never produced by [`ShardMap`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The shard's states, ordered by global node id.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// State of global node `u` (must lie in [`Self::range`]).
    #[inline]
    pub fn state(&self, u: u32) -> &NodeState {
        &self.states[(u - self.node_lo) as usize]
    }

    /// Mutable state of global node `u`.
    #[inline]
    pub(crate) fn state_mut(&mut self, u: u32) -> &mut NodeState {
        &mut self.states[(u - self.node_lo) as usize]
    }

    /// Replaces the state of global node `u` (commit of a refined copy).
    pub fn commit_state(&mut self, u: u32, state: NodeState) {
        self.states[(u - self.node_lo) as usize] = state;
    }

    /// Heap bytes of this shard's states.
    pub fn heap_bytes(&self) -> usize {
        self.states.iter().map(|s| s.heap_bytes()).sum()
    }

    /// Consumes the shard, returning its states.
    pub(crate) fn into_states(self) -> Vec<NodeState> {
        self.states
    }
}

/// Partitions a full id-ordered state vector into shards per `map`.
pub(crate) fn partition_states(map: &ShardMap, states: Vec<NodeState>) -> Vec<IndexShard> {
    debug_assert_eq!(states.len(), map.node_count());
    let mut shards = Vec::with_capacity(map.shard_count());
    let mut rest = states;
    for i in (0..map.shard_count()).rev() {
        let lo = map.starts()[i] as usize;
        let tail = rest.split_off(lo);
        shards.push(IndexShard::new(i, lo as u32, tail));
    }
    shards.reverse();
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_split_tracks_weights_and_stays_valid() {
        // One heavy node dominating the weight mass: the cut lands right
        // after it, but every shard still gets at least one node.
        let mut weights = vec![1u64; 10];
        weights[1] = 1_000;
        let map = ShardMap::balanced(10, 4, &weights);
        assert_eq!(map.shard_count(), 4);
        assert_eq!(map.starts()[0], 0);
        assert!(map.starts().windows(2).all(|w| w[0] < w[1]), "{:?}", map.starts());
        // Round-trips through the persisted-starts validator.
        assert!(ShardMap::from_starts(10, map.starts().to_vec()).is_ok());
        // Skewed weights pull the first boundary just past the heavy node.
        assert_eq!(map.range(0), 0..2);

        // Uniform weights degrade to (near-)even splits; zero weights fall
        // back to even exactly.
        for n in [1usize, 7, 64] {
            for s in [1usize, 2, 5, 64] {
                let uniform = ShardMap::balanced(n, s, &vec![3u64; n]);
                assert_eq!(uniform.shard_count(), s.min(n));
                let mut covered = 0usize;
                for i in 0..uniform.shard_count() {
                    let r = uniform.range(i);
                    assert!(r.start < r.end, "empty shard {i}");
                    covered += r.len();
                }
                assert_eq!(covered, n);
                assert_eq!(ShardMap::balanced(n, s, &vec![0u64; n]), ShardMap::even(n, s));
            }
        }
    }

    #[test]
    fn even_split_covers_every_node_once() {
        for n in [0usize, 1, 5, 6, 7, 100] {
            for s in [1usize, 2, 3, 4, 8, 200] {
                let map = ShardMap::even(n, s);
                assert!(map.shard_count() >= 1);
                assert!(map.shard_count() <= n.max(1));
                let mut covered = 0usize;
                for i in 0..map.shard_count() {
                    let r = map.range(i);
                    assert!(r.start < r.end || n == 0, "empty shard {i} (n={n} s={s})");
                    covered += r.len();
                    for u in r {
                        assert_eq!(map.shard_of(u), i, "n={n} s={s} u={u}");
                    }
                }
                assert_eq!(covered, n, "n={n} s={s}");
            }
        }
    }

    #[test]
    fn even_split_is_balanced() {
        let map = ShardMap::even(10, 4);
        let sizes: Vec<usize> = (0..4).map(|i| map.range(i).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn from_starts_validates() {
        assert!(ShardMap::from_starts(6, vec![]).is_err());
        assert!(ShardMap::from_starts(6, vec![1]).is_err());
        assert!(ShardMap::from_starts(6, vec![0, 3, 3]).is_err());
        assert!(ShardMap::from_starts(6, vec![0, 6]).is_err());
        let map = ShardMap::from_starts(6, vec![0, 2, 4]).unwrap();
        assert_eq!(map.shard_count(), 3);
        assert_eq!(map.range(2), 4..6);
        assert_eq!(map.shard_of(3), 1);
    }

    #[test]
    fn single_shard_map_is_identity() {
        let map = ShardMap::even(42, 1);
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.range(0), 0..42);
        assert_eq!(map.shard_of(41), 0);
    }
}
