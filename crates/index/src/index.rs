//! The assembled reverse top-k index.

use crate::builder::LbiBuilder;
use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::hub_matrix::{HubMatrix, Materializer};
use crate::node_state::{refine_state, NodeState};
use crate::stats::IndexStats;
use rtk_graph::TransitionMatrix;
use rtk_rwr::bca::{BcaEngine, BcaStop, PropagationStrategy};

/// The offline index `I = (P̂, R, W, S, P_H)` of Alg. 1, organized per node.
///
/// Supports the three operations query processing needs:
/// * O(1) access to the `k`-th lower bound of any node ([`Self::state`]);
/// * refinement of a node's bounds, in place ([`Self::refine_node`], the
///   paper's dynamic index update, §4.2.3) or on a caller-owned copy;
/// * persistence ([`crate::storage`]).
#[derive(Clone, Debug)]
pub struct ReverseIndex {
    config: IndexConfig,
    hub_matrix: HubMatrix,
    states: Vec<NodeState>,
    stats: IndexStats,
}

impl ReverseIndex {
    /// Builds the index for `transition` with `config` (Alg. 1).
    pub fn build(
        transition: &TransitionMatrix<'_>,
        config: IndexConfig,
    ) -> Result<Self, IndexError> {
        LbiBuilder::new(config)?.build(transition)
    }

    pub(crate) fn from_parts(
        config: IndexConfig,
        hub_matrix: HubMatrix,
        states: Vec<NodeState>,
        stats: IndexStats,
    ) -> Self {
        Self { config, hub_matrix, states, stats }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Largest supported query `k` (`K`).
    pub fn max_k(&self) -> usize {
        self.config.max_k
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// The hub proximity matrix `P_H`.
    pub fn hub_matrix(&self) -> &HubMatrix {
        &self.hub_matrix
    }

    /// Per-node state of `u`.
    pub fn state(&self, u: u32) -> &NodeState {
        &self.states[u as usize]
    }

    /// All node states, indexed by node id.
    pub fn states(&self) -> &[NodeState] {
        &self.states
    }

    /// Construction/size statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Creates a [`BcaEngine`] matching this index's hub set and BCA
    /// parameters — required for any refinement against it.
    pub fn make_engine(&self) -> BcaEngine {
        BcaEngine::new(
            self.hub_matrix.hubs().clone(),
            self.config.bca,
            PropagationStrategy::BatchThreshold,
        )
    }

    /// Creates a [`Materializer`] sized for this index's graph.
    pub fn make_materializer(&self) -> Materializer {
        Materializer::new(self.node_count())
    }

    /// Refines node `u`'s state **in place** (the paper's `update` mode):
    /// resumes its BCA under `stop` and refreshes its top-K lower bounds.
    /// Returns the iterations executed.
    pub fn refine_node(
        &mut self,
        u: u32,
        transition: &TransitionMatrix<'_>,
        engine: &mut BcaEngine,
        materializer: &mut Materializer,
        stop: &BcaStop,
    ) -> u32 {
        refine_state(
            &mut self.states[u as usize],
            transition,
            engine,
            &self.hub_matrix,
            materializer,
            stop,
        )
    }

    /// Replaces node `u`'s state wholesale (commit of an externally refined
    /// copy; used by the query layer's update mode).
    pub fn commit_state(&mut self, u: u32, state: NodeState) {
        self.states[u as usize] = state;
    }

    /// Commits a batch of externally refined states — the serial merge phase
    /// of the parallel query path. Each worker refines private copies during
    /// screening; this folds them back by node id. Refinement only tightens a
    /// state, so commit order between distinct nodes is irrelevant and the
    /// merged index equals the one a serial in-place run produces.
    pub fn commit_states(&mut self, states: impl IntoIterator<Item = (u32, NodeState)>) {
        for (u, state) in states {
            self.commit_state(u, state);
        }
    }

    /// Recomputes total heap bytes (states drift as queries refine them).
    pub fn current_bytes(&self) -> usize {
        self.states.iter().map(|s| s.heap_bytes()).sum::<usize>() + self.hub_matrix.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubSelection, HubSolver};
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};
    use rtk_rwr::{BcaParams, RwrParams};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn config() -> IndexConfig {
        IndexConfig {
            max_k: 3,
            bca: BcaParams { residue_threshold: 0.8, ..Default::default() },
            hub_selection: HubSelection::DegreeBased { b: 1 },
            hub_solver: HubSolver::PowerMethod(RwrParams::default()),
            rounding_threshold: 0.0,
            threads: 1,
        }
    }

    #[test]
    fn accessors_round_trip() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let index = ReverseIndex::build(&t, config()).unwrap();
        assert_eq!(index.node_count(), 6);
        assert_eq!(index.max_k(), 3);
        assert_eq!(index.states().len(), 6);
        assert_eq!(index.hub_matrix().hub_count(), 2);
        assert!(index.current_bytes() > 0);
    }

    #[test]
    fn refine_node_updates_in_place() {
        // Paper §4.2.3 running example: refining node 4 (1-based) lifts
        // p̂₄(2) from 0.17 to 0.23.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, config()).unwrap();
        let before = index.state(3).kth_lower_bound(2);
        assert!((before - 0.17).abs() < 5e-3, "before = {before}");
        let mut engine = index.make_engine();
        let mut mat = index.make_materializer();
        let ran = index.refine_node(3, &t, &mut engine, &mut mat, &BcaStop::one_iteration());
        assert_eq!(ran, 1);
        let after = index.state(3).kth_lower_bound(2);
        assert!((after - 0.23).abs() < 5e-3, "after = {after}");
    }

    #[test]
    fn commit_state_replaces() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, config()).unwrap();
        let mut engine = index.make_engine();
        let mut mat = index.make_materializer();
        let mut copy = index.state(5).clone();
        crate::node_state::refine_state(
            &mut copy,
            &t,
            &mut engine,
            index.hub_matrix(),
            &mut mat,
            &BcaStop::one_iteration(),
        );
        assert_ne!(&copy, index.state(5));
        index.commit_state(5, copy.clone());
        assert_eq!(&copy, index.state(5));
    }
}
