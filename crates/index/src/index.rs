//! The assembled reverse top-k index, partitioned into node-range shards.

use crate::builder::LbiBuilder;
use crate::config::IndexConfig;
use crate::error::IndexError;
use crate::hub_matrix::{HubMatrix, Materializer};
use crate::node_state::{refine_state, NodeState};
use crate::shard::{partition_states, IndexShard, ShardMap};
use crate::stats::IndexStats;
use rtk_graph::TransitionMatrix;
use rtk_rwr::bca::{BcaEngine, BcaStop, PropagationStrategy};

/// The offline index `I = (P̂, R, W, S, P_H)` of Alg. 1, organized per node
/// and partitioned into `S` contiguous node-range [`IndexShard`]s.
///
/// The hub matrix `P_H` is shared across shards (every node's materialized
/// bounds reference the same hub vectors); everything per-node lives in the
/// shard owning that node's id range. Supports the three operations query
/// processing needs:
/// * O(1) access to the `k`-th lower bound of any node ([`Self::state`]);
/// * refinement of a node's bounds, in place ([`Self::refine_node`], the
///   paper's dynamic index update, §4.2.3) or on a caller-owned copy;
/// * persistence ([`crate::storage`]) — per shard, under a manifest.
#[derive(Clone, Debug)]
pub struct ReverseIndex {
    config: IndexConfig,
    hub_matrix: HubMatrix,
    shards: Vec<IndexShard>,
    shard_map: ShardMap,
    stats: IndexStats,
}

impl ReverseIndex {
    /// Builds the index for `transition` with `config` (Alg. 1).
    pub fn build(
        transition: &TransitionMatrix<'_>,
        config: IndexConfig,
    ) -> Result<Self, IndexError> {
        LbiBuilder::new(config)?.build(transition)
    }

    /// Assembles an index from a full id-ordered state vector, partitioning
    /// it per `config.shards`.
    pub(crate) fn from_parts(
        config: IndexConfig,
        hub_matrix: HubMatrix,
        states: Vec<NodeState>,
        stats: IndexStats,
    ) -> Self {
        let shard_map = ShardMap::even(states.len(), config.effective_shards(states.len()));
        let shards = partition_states(&shard_map, states);
        Self { config, hub_matrix, shards, shard_map, stats }
    }

    /// Assembles an index from already-partitioned shards (persistence).
    pub(crate) fn from_shards(
        config: IndexConfig,
        hub_matrix: HubMatrix,
        shards: Vec<IndexShard>,
        shard_map: ShardMap,
        stats: IndexStats,
    ) -> Self {
        debug_assert_eq!(shards.len(), shard_map.shard_count());
        Self { config, hub_matrix, shards, shard_map, stats }
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Largest supported query `k` (`K`).
    pub fn max_k(&self) -> usize {
        self.config.max_k
    }

    /// Number of indexed nodes.
    pub fn node_count(&self) -> usize {
        self.shard_map.node_count()
    }

    /// Number of shards `S`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard partition of the node id space.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// All shards, ordered by node range.
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The hub proximity matrix `P_H` (shared by every shard).
    pub fn hub_matrix(&self) -> &HubMatrix {
        &self.hub_matrix
    }

    /// Per-node state of `u`, resolved through the shard map.
    #[inline]
    pub fn state(&self, u: u32) -> &NodeState {
        self.shards[self.shard_map.shard_of(u)].state(u)
    }

    /// All node states in ascending id order (crosses shard boundaries).
    pub fn iter_states(&self) -> impl Iterator<Item = &NodeState> {
        self.shards.iter().flat_map(|s| s.states().iter())
    }

    /// Construction/size statistics.
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Re-partitions the index into `shards` even node ranges. A pure
    /// re-grouping of the same per-node states: answers, bounds, and the
    /// serialized per-node bytes are unchanged (`rtk shard split|merge`).
    pub fn repartition(&mut self, shards: usize) {
        let n = self.node_count();
        self.repartition_by_map(ShardMap::even(n, shards.max(1).min(n.max(1))));
    }

    /// Re-partitions the index along an explicit [`ShardMap`] — e.g. a
    /// degree-balanced [`ShardMap::balanced`] layout from `rtk shard split
    /// --balance edges`. Same guarantee as [`Self::repartition`]: a pure
    /// re-grouping of the same per-node states, so answers are unchanged.
    ///
    /// # Panics
    /// Panics if `map` covers a different node count than the index.
    pub fn repartition_by_map(&mut self, map: ShardMap) {
        let n = self.node_count();
        assert_eq!(map.node_count(), n, "shard map covers a different node count");
        if map == self.shard_map {
            self.config.shards = map.shard_count();
            return;
        }
        let mut states = Vec::with_capacity(n);
        for shard in std::mem::take(&mut self.shards) {
            states.extend(shard.into_states());
        }
        self.shards = partition_states(&map, states);
        self.config.shards = map.shard_count();
        self.shard_map = map;
    }

    /// Creates a [`BcaEngine`] matching this index's hub set and BCA
    /// parameters — required for any refinement against it.
    pub fn make_engine(&self) -> BcaEngine {
        BcaEngine::new(
            self.hub_matrix.hubs().clone(),
            self.config.bca,
            PropagationStrategy::BatchThreshold,
        )
    }

    /// Creates a [`Materializer`] sized for this index's graph.
    pub fn make_materializer(&self) -> Materializer {
        Materializer::new(self.node_count())
    }

    /// Refines node `u`'s state **in place** (the paper's `update` mode):
    /// resumes its BCA under `stop` and refreshes its top-K lower bounds.
    /// Returns the iterations executed.
    pub fn refine_node(
        &mut self,
        u: u32,
        transition: &TransitionMatrix<'_>,
        engine: &mut BcaEngine,
        materializer: &mut Materializer,
        stop: &BcaStop,
    ) -> u32 {
        let shard = self.shard_map.shard_of(u);
        refine_state(
            self.shards[shard].state_mut(u),
            transition,
            engine,
            &self.hub_matrix,
            materializer,
            stop,
        )
    }

    /// Replaces node `u`'s state wholesale (commit of an externally refined
    /// copy; used by the query layer's update mode).
    pub fn commit_state(&mut self, u: u32, state: NodeState) {
        let shard = self.shard_map.shard_of(u);
        self.shards[shard].commit_state(u, state);
    }

    /// Commits a batch of externally refined states — the serial cross-shard
    /// merge phase of the parallel query path. Each worker refines private
    /// copies during screening; this folds them back into the owning shards
    /// by node id. Refinement only tightens a state, so commit order between
    /// distinct nodes is irrelevant and the merged index equals the one a
    /// serial in-place run produces, for every shard and thread count.
    pub fn commit_states(&mut self, states: impl IntoIterator<Item = (u32, NodeState)>) {
        for (u, state) in states {
            self.commit_state(u, state);
        }
    }

    /// Applies the index-side effect of one edge update whose renormalized
    /// transition row is `source` (the edge's tail; see [`crate::update`]).
    /// `transition` must already reflect the mutated graph. Recomputes the
    /// affected hub columns first (states materialize against `P_H`), then
    /// the affected node states, with the exact Algorithm 1 recipes — so the
    /// post-update index is bitwise-equal to a full rebuild as long as
    /// untouched states were never query-refined. Everything outside the
    /// affected set is left alone.
    pub fn apply_update(
        &mut self,
        transition: &TransitionMatrix<'_>,
        source: u32,
    ) -> crate::update::UpdateEffect {
        let affected = crate::update::affected_set(transition.graph(), source);
        let hub_ids: Vec<u32> = affected
            .iter()
            .copied()
            .filter(|&h| self.hub_matrix.hubs().position(h).is_some())
            .collect();
        let threads = self.config.effective_threads();
        self.hub_matrix
            .recompute_columns(transition, &hub_ids, &self.config.hub_solver, threads);
        let fresh =
            crate::update::recompute_states(transition, &self.hub_matrix, &self.config, &affected);
        let recomputed_states = fresh.len();
        self.commit_states(fresh);
        crate::update::UpdateEffect { recomputed_states, recomputed_hubs: hub_ids.len() }
    }

    /// Recomputes total heap bytes (states drift as queries refine them).
    pub fn current_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum::<usize>() + self.hub_matrix.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HubSelection, HubSolver};
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};
    use rtk_rwr::{BcaParams, RwrParams};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn config() -> IndexConfig {
        IndexConfig {
            max_k: 3,
            bca: BcaParams { residue_threshold: 0.8, ..Default::default() },
            hub_selection: HubSelection::DegreeBased { b: 1 },
            hub_solver: HubSolver::PowerMethod(RwrParams::default()),
            rounding_threshold: 0.0,
            threads: 1,
            shards: 1,
        }
    }

    #[test]
    fn accessors_round_trip() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let index = ReverseIndex::build(&t, config()).unwrap();
        assert_eq!(index.node_count(), 6);
        assert_eq!(index.max_k(), 3);
        assert_eq!(index.iter_states().count(), 6);
        assert_eq!(index.shard_count(), 1);
        assert_eq!(index.hub_matrix().hub_count(), 2);
        assert!(index.current_bytes() > 0);
    }

    #[test]
    fn sharded_build_matches_single_shard_bitwise() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let single = ReverseIndex::build(&t, config()).unwrap();
        for shards in [2usize, 3, 6, 99] {
            let sharded = ReverseIndex::build(&t, IndexConfig { shards, ..config() }).unwrap();
            assert_eq!(sharded.shard_count(), shards.min(6));
            for u in 0..6u32 {
                assert_eq!(single.state(u), sharded.state(u), "shards={shards} node {u}");
            }
        }
    }

    #[test]
    fn repartition_preserves_states() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, config()).unwrap();
        let reference = index.clone();
        for shards in [3usize, 1, 6, 2] {
            index.repartition(shards);
            assert_eq!(index.shard_count(), shards);
            assert_eq!(index.config().shards, shards);
            for u in 0..6u32 {
                assert_eq!(index.state(u), reference.state(u), "shards={shards} node {u}");
            }
            let covered: usize = index.shards().iter().map(|s| s.len()).sum();
            assert_eq!(covered, 6);
        }
    }

    #[test]
    fn refine_node_updates_in_place() {
        // Paper §4.2.3 running example: refining node 4 (1-based) lifts
        // p̂₄(2) from 0.17 to 0.23 — and sharding must not change that.
        for shards in [1usize, 3] {
            let g = toy();
            let t = TransitionMatrix::new(&g);
            let mut index = ReverseIndex::build(&t, IndexConfig { shards, ..config() }).unwrap();
            let before = index.state(3).kth_lower_bound(2);
            assert!((before - 0.17).abs() < 5e-3, "before = {before}");
            let mut engine = index.make_engine();
            let mut mat = index.make_materializer();
            let ran = index.refine_node(3, &t, &mut engine, &mut mat, &BcaStop::one_iteration());
            assert_eq!(ran, 1);
            let after = index.state(3).kth_lower_bound(2);
            assert!((after - 0.23).abs() < 5e-3, "after = {after}");
        }
    }

    #[test]
    fn commit_state_replaces_across_shards() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, IndexConfig { shards: 3, ..config() }).unwrap();
        let mut engine = index.make_engine();
        let mut mat = index.make_materializer();
        let mut copy = index.state(5).clone();
        crate::node_state::refine_state(
            &mut copy,
            &t,
            &mut engine,
            index.hub_matrix(),
            &mut mat,
            &BcaStop::one_iteration(),
        );
        assert_ne!(&copy, index.state(5));
        index.commit_state(5, copy.clone());
        assert_eq!(&copy, index.state(5));
    }
}
