//! Property tests for the update-log format (`RTKULOG1`), in the style of
//! `manifest_props.rs`: arbitrary record sequences must round-trip, the
//! append path must produce the same bytes as a bulk write, and every
//! truncation / byte corruption must surface as a clean error — never a
//! panic, never a silently wrong log.
//!
//! One deliberate asymmetry with the manifest suite: the log has **no
//! length prefix** (it must grow by pure appends), so a prefix cut at a
//! record boundary IS a valid shorter log — exactly the crash-recovery
//! semantics a durable server needs. Only cuts *inside* a record (a torn
//! append) are errors.
//!
//! Driven by seeded `StdRng` case generation — failures reproduce from the
//! printed case seed.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_index::storage::{self, UpdateRecord, ULOG_MAGIC, ULOG_RECORD_BYTES, ULOG_VERSION};
use rtk_index::IndexError;
use rtk_sparse::codec::DecodeError;
use std::io::Cursor;

const CASES: u64 = 16;
const HEADER_BYTES: usize = 12; // 8-byte magic + u32 version

fn arb_records(rng: &mut StdRng) -> Vec<UpdateRecord> {
    let len = rng.gen_range(0usize..60);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.6) {
                let weight = match rng.gen_range(0u32..10) {
                    // Extremes must survive the codec too.
                    0 => f64::MIN_POSITIVE,
                    1 => 1e300,
                    _ => rng.gen_range(0.01..10.0),
                };
                UpdateRecord::AddEdge { from: rng.gen(), to: rng.gen(), weight }
            } else {
                UpdateRecord::RemoveEdge { from: rng.gen(), to: rng.gen() }
            }
        })
        .collect()
}

fn encode(records: &[UpdateRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    storage::write_update_log(&mut buf, records).unwrap();
    buf
}

#[test]
fn logs_round_trip_for_arbitrary_record_sequences() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x010C_0001 + case);
        let records = arb_records(&mut rng);
        let buf = encode(&records);
        assert_eq!(&buf[..8], ULOG_MAGIC, "case {case}");
        assert_eq!(buf.len(), HEADER_BYTES + records.len() * ULOG_RECORD_BYTES, "case {case}");
        let back = storage::read_update_log(Cursor::new(&buf)).unwrap();
        assert_eq!(records, back, "case {case}");
        // encode ∘ decode ∘ encode is the byte identity (removals carry a
        // canonical zero payload, so there is exactly one encoding).
        assert_eq!(buf, encode(&back), "case {case}: re-encode changed bytes");
    }
}

#[test]
fn append_path_produces_the_same_bytes_as_a_bulk_write() {
    let dir = std::env::temp_dir().join("rtk_index_test_ulog_props");
    std::fs::create_dir_all(&dir).unwrap();
    for case in 0..4 {
        let mut rng = StdRng::seed_from_u64(0x010C_1000 + case);
        let records = arb_records(&mut rng);
        let appended = dir.join(format!("appended-{case}.rtkl"));
        std::fs::remove_file(&appended).ok();
        for r in &records {
            storage::append_update_log(&appended, r).unwrap();
        }
        let bulk = dir.join(format!("bulk-{case}.rtkl"));
        storage::save_update_log(&bulk, &records).unwrap();
        if records.is_empty() {
            // Pure-append never created the file; nothing to compare.
            continue;
        }
        assert_eq!(
            std::fs::read(&appended).unwrap(),
            std::fs::read(&bulk).unwrap(),
            "case {case}: record-at-a-time appends diverged from the bulk writer"
        );
        assert_eq!(records, storage::load_update_log(&appended).unwrap(), "case {case}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_semantics_match_append_only_recovery() {
    let mut rng = StdRng::seed_from_u64(0x010C_2000);
    let mut records = arb_records(&mut rng);
    while records.len() < 5 {
        records.push(UpdateRecord::RemoveEdge { from: 1, to: 2 });
    }
    let buf = encode(&records);
    for cut in 0..buf.len() {
        let result = storage::read_update_log(Cursor::new(&buf[..cut]));
        if cut < HEADER_BYTES {
            assert!(result.is_err(), "prefix {cut}: headerless log decoded");
        } else if (cut - HEADER_BYTES).is_multiple_of(ULOG_RECORD_BYTES) {
            // A record-boundary prefix is a valid shorter log: what a
            // crashed appender leaves behind after its last durable record.
            let got = result.unwrap_or_else(|e| panic!("prefix {cut}: {e:?}"));
            let keep = (cut - HEADER_BYTES) / ULOG_RECORD_BYTES;
            assert_eq!(got, records[..keep], "prefix {cut}");
        } else {
            // A torn append is an explicit error, never silently dropped.
            assert!(result.is_err(), "prefix {cut}: torn record decoded");
        }
    }
}

#[test]
fn random_single_byte_corruption_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x010C_3000);
    let records = arb_records(&mut rng);
    let buf = encode(&records);
    for trial in 0..512 {
        let pos = rng.gen_range(0..buf.len());
        let bit = 1u8 << rng.gen_range(0..8);
        let mut bad = buf.clone();
        bad[pos] ^= bit;
        // Decoding may legitimately succeed (a flipped node id or weight
        // mantissa is still a well-formed record) but must never panic,
        // and whatever decodes must re-encode to the corrupted bytes.
        if let Ok(loaded) = storage::read_update_log(Cursor::new(&bad)) {
            assert_eq!(loaded.len(), records.len(), "trial {trial} (flip at {pos})");
            assert_eq!(bad, encode(&loaded), "trial {trial} (flip at {pos}): lossy decode");
        }
    }
}

#[test]
fn add_edge_weights_are_validated_on_decode() {
    // Hand-build records the writer refuses to produce: zero, negative,
    // NaN, and infinite add-edge weights, plus a non-canonical removal
    // payload and an unknown op — every one is a clean Corrupt error.
    let valid = encode(&[UpdateRecord::AddEdge { from: 3, to: 4, weight: 1.0 }]);
    let corrupt_weight = |w: f64| {
        let mut bad = valid.clone();
        bad[HEADER_BYTES + 12..].copy_from_slice(&w.to_le_bytes());
        storage::read_update_log(Cursor::new(bad))
    };
    for w in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(
            matches!(corrupt_weight(w), Err(IndexError::Decode(DecodeError::Corrupt(_)))),
            "add-edge weight {w} must be rejected"
        );
    }

    let mut removal = valid.clone();
    removal[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&1u32.to_le_bytes());
    assert!(
        matches!(
            storage::read_update_log(Cursor::new(removal)),
            Err(IndexError::Decode(DecodeError::Corrupt(_)))
        ),
        "remove-edge with a nonzero weight payload must be rejected"
    );

    let mut unknown_op = valid;
    unknown_op[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        storage::read_update_log(Cursor::new(unknown_op)),
        Err(IndexError::Decode(DecodeError::Corrupt(_)))
    ));
}

#[test]
fn bounded_reader_enforces_its_limit() {
    let records = vec![UpdateRecord::RemoveEdge { from: 0, to: 1 }; 10];
    let buf = encode(&records);
    assert_eq!(storage::read_update_log_bounded(Cursor::new(&buf), 10).unwrap(), records);
    assert!(
        storage::read_update_log_bounded(Cursor::new(&buf), 9).is_err(),
        "an 10-record log must not decode under a 9-record bound"
    );
    assert!(storage::read_update_log_bounded(Cursor::new(&buf), 0).is_err());
}

#[test]
fn wrong_magic_and_future_versions_are_rejected() {
    let buf = encode(&[UpdateRecord::RemoveEdge { from: 0, to: 1 }]);

    let mut wrong_magic = buf.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        storage::read_update_log(Cursor::new(wrong_magic)),
        Err(IndexError::Decode(DecodeError::BadMagic { .. }))
    ));

    let mut future = buf;
    future[8..12].copy_from_slice(&(ULOG_VERSION + 1).to_le_bytes());
    match storage::read_update_log(Cursor::new(future)) {
        Err(IndexError::Decode(DecodeError::UnsupportedVersion { found, supported })) => {
            assert_eq!(found, ULOG_VERSION + 1);
            assert_eq!(supported, ULOG_VERSION);
        }
        other => panic!("future version must be UnsupportedVersion, got {other:?}"),
    }
}
