//! Property tests for the sharded manifest format (`RTKMANI1`) and the
//! per-shard sections (`RTKSHRD1`), in the style of
//! `crates/sparse/tests/codec_props.rs`: arbitrary indexes must round-trip
//! for arbitrary shard partitions, and every truncation / byte corruption
//! must surface as a clean error — never a panic, never a silently wrong
//! index.
//!
//! Driven by seeded `StdRng` case generation — failures reproduce from the
//! printed case seed.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_graph::gen::{erdos_renyi, ErdosRenyiConfig};
use rtk_graph::TransitionMatrix;
use rtk_index::{storage, HubSelection, IndexConfig, ReverseIndex};
use std::io::Cursor;

const CASES: u64 = 12;

/// A small random index with a random shard partition.
fn arb_index(rng: &mut StdRng) -> ReverseIndex {
    let nodes = rng.gen_range(8usize..40);
    let edges = nodes * rng.gen_range(3usize..6);
    let g = erdos_renyi(&ErdosRenyiConfig { nodes, edges, seed: rng.gen() }).unwrap();
    let t = TransitionMatrix::new(&g);
    let config = IndexConfig {
        max_k: rng.gen_range(2usize..6),
        hub_selection: HubSelection::DegreeBased { b: rng.gen_range(1usize..4) },
        rounding_threshold: if rng.gen_bool(0.5) { 1e-6 } else { 0.0 },
        threads: 1,
        shards: rng.gen_range(2usize..9),
        ..Default::default()
    };
    ReverseIndex::build(&t, config).unwrap()
}

fn assert_same(a: &ReverseIndex, b: &ReverseIndex, context: &str) {
    assert_eq!(a.node_count(), b.node_count(), "{context}");
    assert_eq!(a.max_k(), b.max_k(), "{context}");
    assert_eq!(a.shard_count(), b.shard_count(), "{context}");
    assert_eq!(a.shard_map(), b.shard_map(), "{context}");
    for u in 0..a.node_count() as u32 {
        assert_eq!(a.state(u), b.state(u), "{context}: node {u}");
    }
}

#[test]
fn manifests_round_trip_for_arbitrary_indexes_and_partitions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5AAD_0001 + case);
        let index = arb_index(&mut rng);
        let mut buf = Vec::new();
        storage::save(&index, &mut buf).unwrap();
        assert_eq!(&buf[..8], storage::MANIFEST_MAGIC, "case {case}");
        let back = storage::load(Cursor::new(buf)).unwrap();
        assert_same(&index, &back, &format!("case {case}"));

        // Repartitioning and saving again still round-trips.
        let mut repartitioned = index.clone();
        repartitioned.repartition(rng.gen_range(1usize..12));
        let mut buf2 = Vec::new();
        storage::save(&repartitioned, &mut buf2).unwrap();
        let back2 = storage::load(Cursor::new(buf2)).unwrap();
        assert_same(&repartitioned, &back2, &format!("case {case} (repartitioned)"));
    }
}

#[test]
fn shard_sections_round_trip_independently() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5AAD_1000 + case);
        let index = arb_index(&mut rng);
        for shard in index.shards() {
            let mut buf = Vec::new();
            storage::save_shard(shard, index.node_count(), index.max_k(), &mut buf).unwrap();
            let back = storage::load_shard(
                Cursor::new(buf),
                index.hub_matrix(),
                index.node_count(),
                index.max_k(),
            )
            .unwrap();
            assert_eq!(back.id(), shard.id(), "case {case}");
            assert_eq!(back.range(), shard.range(), "case {case}");
            assert_eq!(back.states(), shard.states(), "case {case}");
        }
    }
}

#[test]
fn truncation_at_every_prefix_errors_cleanly() {
    // One representative manifest, every strict prefix: must error, never
    // panic, never decode.
    let mut rng = StdRng::seed_from_u64(0x5AAD_2000);
    let index = arb_index(&mut rng);
    let mut buf = Vec::new();
    storage::save(&index, &mut buf).unwrap();
    for cut in 0..buf.len() {
        assert!(
            storage::load(Cursor::new(&buf[..cut])).is_err(),
            "prefix {cut}/{} decoded as a full manifest",
            buf.len()
        );
    }
}

#[test]
fn random_single_byte_corruption_never_panics() {
    // Flip one random byte per trial. The loader may legitimately succeed
    // (timings and values are arbitrary bytes), but it must never panic,
    // and any index it does produce must be structurally sound.
    let mut rng = StdRng::seed_from_u64(0x5AAD_3000);
    let index = arb_index(&mut rng);
    let mut buf = Vec::new();
    storage::save(&index, &mut buf).unwrap();
    for trial in 0..256 {
        let pos = rng.gen_range(0..buf.len());
        let bit = 1u8 << rng.gen_range(0..8);
        let mut bad = buf.clone();
        bad[pos] ^= bit;
        if let Ok(loaded) = storage::load(Cursor::new(bad)) {
            assert_eq!(loaded.node_count(), index.node_count(), "trial {trial} (flip at {pos})");
            let covered: usize = loaded.shards().iter().map(|s| s.len()).sum();
            assert_eq!(covered, loaded.node_count(), "trial {trial} (flip at {pos})");
            for u in 0..loaded.node_count() as u32 {
                let _ = loaded.state(u); // resolvable through the shard map
            }
        }
    }
}

#[test]
fn corrupt_section_lengths_are_rejected_before_allocation() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5AAD_4000 + case);
        let index = arb_index(&mut rng);
        let mut buf = Vec::new();
        storage::save(&index, &mut buf).unwrap();

        // Corrupt the manifest's declared shard count — bytes 28..36
        // (after magic 8 + version 4 + node_count 8 + max_k 8) hold it.
        let mut bad = buf.clone();
        bad[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(storage::load(Cursor::new(bad)).is_err(), "case {case}: absurd shard count");

        // Declared node count far beyond the stream must fail fast too.
        let mut bad = buf.clone();
        bad[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(storage::load(Cursor::new(bad)).is_err(), "case {case}: absurd node count");
    }
}

#[test]
fn shard_sections_reject_wrong_manifest_context() {
    let mut rng = StdRng::seed_from_u64(0x5AAD_5000);
    let index = arb_index(&mut rng);
    let shard = &index.shards()[0];
    let mut buf = Vec::new();
    storage::save_shard(shard, index.node_count(), index.max_k(), &mut buf).unwrap();

    // A section loaded against a different node count or max_k is corrupt.
    assert!(storage::load_shard(
        Cursor::new(buf.clone()),
        index.hub_matrix(),
        index.node_count() + 1,
        index.max_k(),
    )
    .is_err());
    assert!(storage::load_shard(
        Cursor::new(buf),
        index.hub_matrix(),
        index.node_count(),
        index.max_k() + 1,
    )
    .is_err());
}
