//! Property tests for the binary codec: every primitive must round-trip for
//! arbitrary inputs, and every truncation / corruption must surface as a
//! `DecodeError`, never a panic or a bogus value.
//!
//! Driven by seeded `StdRng` case generation (the PR-1 offline replacement
//! for proptest) — failures reproduce from the printed case seed.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_sparse::codec::{self, DecodeError};
use rtk_sparse::SparseVector;
use std::io::Cursor;

const CASES: u64 = 64;

fn arb_f64(rng: &mut StdRng) -> f64 {
    // Mix magnitudes, signs, and exact binary fractions.
    let mag = 10f64.powi(rng.gen_range(-12i32..12));
    let v: f64 = rng.gen::<f64>() * mag;
    if rng.gen_bool(0.5) {
        -v
    } else {
        v
    }
}

fn arb_sparse(rng: &mut StdRng) -> SparseVector {
    let nnz = rng.gen_range(0usize..32);
    let mut indices: Vec<u32> = Vec::with_capacity(nnz);
    let mut next = 0u32;
    for _ in 0..nnz {
        next += rng.gen_range(1u32..50);
        indices.push(next);
    }
    let values: Vec<f64> = (0..nnz).map(|_| rng.gen::<f64>() + 1e-12).collect();
    SparseVector::from_parts(indices, values)
}

#[test]
fn scalars_round_trip_for_arbitrary_values() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_0001 + case);
        let a: u32 = rng.gen();
        let b: u64 = rng.gen();
        let c = arb_f64(&mut rng);
        let mut buf = Vec::new();
        codec::write_u32(&mut buf, a).unwrap();
        codec::write_u64(&mut buf, b).unwrap();
        codec::write_f64(&mut buf, c).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(codec::read_u32(&mut r).unwrap(), a, "case {case}");
        assert_eq!(codec::read_u64(&mut r).unwrap(), b, "case {case}");
        // Bitwise: the codec must preserve f64s exactly, including -0.0.
        assert_eq!(codec::read_f64(&mut r).unwrap().to_bits(), c.to_bits(), "case {case}");
    }
}

#[test]
fn sequences_round_trip_for_arbitrary_lengths() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_1000 + case);
        let us: Vec<u32> = (0..rng.gen_range(0usize..64)).map(|_| rng.gen()).collect();
        let fs: Vec<f64> = (0..rng.gen_range(0usize..64)).map(|_| arb_f64(&mut rng)).collect();
        let bytes: Vec<u8> =
            (0..rng.gen_range(0usize..64)).map(|_| rng.gen::<u32>() as u8).collect();
        let mut buf = Vec::new();
        codec::write_u32_seq(&mut buf, &us).unwrap();
        codec::write_f64_seq(&mut buf, &fs).unwrap();
        codec::write_bytes(&mut buf, &bytes).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(codec::read_u32_seq(&mut r).unwrap(), us, "case {case}");
        let back = codec::read_f64_seq(&mut r).unwrap();
        assert_eq!(back.len(), fs.len(), "case {case}");
        for (x, y) in back.iter().zip(&fs) {
            assert_eq!(x.to_bits(), y.to_bits(), "case {case}");
        }
        assert_eq!(codec::read_bytes_bounded(&mut r, 64).unwrap(), bytes, "case {case}");
    }
}

#[test]
fn sparse_vectors_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_2000 + case);
        let v = arb_sparse(&mut rng);
        let mut buf = Vec::new();
        codec::write_sparse_vector(&mut buf, &v).unwrap();
        let back = codec::read_sparse_vector(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, v, "case {case}");
    }
}

#[test]
fn headers_round_trip_and_reject_bad_magic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_3000 + case);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = rng.gen_range(b'A'..=b'Z');
        }
        let version = rng.gen_range(0u32..100);
        let mut buf = Vec::new();
        codec::write_header(&mut buf, &magic, version).unwrap();
        let got = codec::read_header(&mut Cursor::new(buf.clone()), &magic, version).unwrap();
        assert_eq!(got, version, "case {case}");

        // Flip one magic byte: must be BadMagic.
        let flip = rng.gen_range(0usize..8);
        let mut bad = buf.clone();
        bad[flip] ^= 0x20;
        assert!(
            matches!(
                codec::read_header(&mut Cursor::new(bad), &magic, version).unwrap_err(),
                DecodeError::BadMagic { .. }
            ),
            "case {case}"
        );

        // A version beyond max_version must be rejected.
        if version > 0 {
            assert!(
                matches!(
                    codec::read_header(&mut Cursor::new(buf), &magic, version - 1).unwrap_err(),
                    DecodeError::UnsupportedVersion { .. }
                ),
                "case {case}"
            );
        }
    }
}

#[test]
fn truncation_at_every_prefix_errors_cleanly() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_4000 + case);
        let v = arb_sparse(&mut rng);
        let mut buf = Vec::new();
        codec::write_sparse_vector(&mut buf, &v).unwrap();
        // Every strict prefix must produce an error (Io for short reads,
        // Corrupt for inconsistent lengths) — never a panic, never Ok.
        for cut in 0..buf.len() {
            let err = codec::read_sparse_vector(&mut Cursor::new(&buf[..cut]));
            assert!(err.is_err(), "case {case}: prefix {cut}/{} decoded", buf.len());
        }
    }
}

#[test]
fn corrupt_length_prefixes_never_allocate_absurdly() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_5000 + case);
        // A stream that *only* contains a huge length prefix: the bounded
        // readers must reject it without trying to read (or reserve) data.
        let declared = rng.gen_range(1_000_000_001u64..u64::MAX);
        let mut buf = Vec::new();
        codec::write_u64(&mut buf, declared).unwrap();
        assert!(
            matches!(
                codec::read_u32_seq(&mut Cursor::new(buf.clone())).unwrap_err(),
                DecodeError::Corrupt(_)
            ),
            "case {case}"
        );
        let bound = rng.gen_range(0u64..1000);
        assert!(
            matches!(
                codec::read_f64_seq_bounded(&mut Cursor::new(buf.clone()), bound).unwrap_err(),
                DecodeError::Corrupt(_)
            ),
            "case {case}"
        );
        assert!(
            matches!(
                codec::read_bytes_bounded(&mut Cursor::new(buf), bound).unwrap_err(),
                DecodeError::Corrupt(_)
            ),
            "case {case}"
        );
    }
}

#[test]
fn mismatched_parallel_sequences_are_corrupt() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DE_6000 + case);
        let n = rng.gen_range(1usize..16);
        let extra = rng.gen_range(1usize..4);
        let idx: Vec<u32> = (0..n as u32).collect();
        let vals: Vec<f64> = (0..n + extra).map(|_| rng.gen()).collect();
        let mut buf = Vec::new();
        codec::write_u32_seq(&mut buf, &idx).unwrap();
        codec::write_f64_seq(&mut buf, &vals).unwrap();
        assert!(
            matches!(
                codec::read_sparse_vector(&mut Cursor::new(buf)).unwrap_err(),
                DecodeError::Corrupt(_)
            ),
            "case {case}"
        );
    }
}
