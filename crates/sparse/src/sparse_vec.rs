//! A compact sparse vector sorted by index.
//!
//! [`SparseVector`] is the storage format for every per-node piece of
//! Bookmark-Coloring state kept in the offline index: the residue ink `r_u`,
//! the retained non-hub ink `w_u` and the hub-accumulated ink `s_u` are all
//! sparse after the few iterations the index runs (paper §4.1.2), so storing
//! `(u32 index, f64 value)` pairs is what makes the index fit in memory.

use crate::scratch::EpochScratch;

/// A sparse vector of `f64` values over a `0..n` index space.
///
/// Invariants (enforced by constructors, relied on everywhere):
/// * indices are strictly increasing;
/// * stored values are finite and non-zero (zeros are pruned on compaction).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a sparse vector with a single entry `value` at `index`.
    pub fn unit(index: u32, value: f64) -> Self {
        Self { indices: vec![index], values: vec![value] }
    }

    /// Builds a sparse vector from parallel `(indices, values)` arrays.
    ///
    /// # Panics
    /// Panics if lengths differ, indices are not strictly increasing, or any
    /// value is non-finite.
    pub fn from_parts(indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(indices.len(), values.len(), "SparseVector: parallel array length mismatch");
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "SparseVector: indices must be strictly increasing");
        }
        assert!(values.iter().all(|v| v.is_finite()), "SparseVector: non-finite value");
        Self { indices, values }
    }

    /// Builds a sparse vector from the entries of `dense` whose absolute value
    /// exceeds `threshold` (use `0.0` to keep every non-zero entry).
    pub fn from_dense(dense: &[f64], threshold: f64) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 && v.abs() > threshold {
                indices.push(i as u32);
                values.push(v);
            }
        }
        Self { indices, values }
    }

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The stored indices, strictly increasing.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The value at `index` (0.0 when absent). `O(log nnz)`.
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Sum of stored values (the L1 norm when all values are non-negative,
    /// which holds for every ink vector in this library).
    pub fn sum(&self) -> f64 {
        // `+ 0.0` normalizes the empty sum: `Sum for f64` folds from -0.0.
        self.values.iter().sum::<f64>() + 0.0
    }

    /// L1 norm `Σ|v|`.
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum::<f64>() + 0.0
    }

    /// Largest stored value with its index, or `None` when empty.
    pub fn max_entry(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (i, v) in self.iter() {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((i, v)),
            }
        }
        best
    }

    /// Scatters `scale ×` this vector into a dense accumulator.
    pub fn scatter_into(&self, scale: f64, scratch: &mut EpochScratch) {
        for (i, v) in self.iter() {
            scratch.add(i as usize, scale * v);
        }
    }

    /// Materializes into a dense vector of length `n`.
    ///
    /// # Panics
    /// Panics if any index is `≥ n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for (i, v) in self.iter() {
            out[i as usize] = v;
        }
        out
    }

    /// Approximate heap footprint in bytes (used for index size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.indices.capacity() * std::mem::size_of::<u32>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// Drops every entry with value `≤ threshold` (used by hub-matrix
    /// rounding, paper §4.1.3) and returns the total mass removed.
    pub fn round_below(&mut self, threshold: f64) -> f64 {
        let mut removed = 0.0;
        let mut keep_i = Vec::with_capacity(self.indices.len());
        let mut keep_v = Vec::with_capacity(self.values.len());
        for (i, v) in self.iter() {
            if v > threshold {
                keep_i.push(i);
                keep_v.push(v);
            } else {
                removed += v;
            }
        }
        self.indices = keep_i;
        self.values = keep_v;
        removed
    }
}

impl FromIterator<(u32, f64)> for SparseVector {
    /// Collects `(index, value)` pairs; they must arrive in strictly
    /// increasing index order and with finite values.
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in iter {
            indices.push(i);
            values.push(v);
        }
        Self::from_parts(indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseVector {
        SparseVector::from_parts(vec![1, 4, 7], vec![0.5, 0.25, 0.125])
    }

    #[test]
    fn from_parts_and_accessors() {
        let v = sample();
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.get(4), 0.25);
        assert_eq!(v.get(2), 0.0);
        assert!((v.sum() - 0.875).abs() < 1e-15);
        assert_eq!(v.max_entry(), Some((1, 0.5)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_unsorted() {
        SparseVector::from_parts(vec![4, 1], vec![0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_mismatch() {
        SparseVector::from_parts(vec![1], vec![0.1, 0.2]);
    }

    #[test]
    fn from_dense_thresholds() {
        let v = SparseVector::from_dense(&[0.0, 0.5, 1e-9, 0.25], 1e-6);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[0.5, 0.25]);
    }

    #[test]
    fn from_dense_keeps_all_nonzero_at_zero_threshold() {
        let v = SparseVector::from_dense(&[0.0, 1e-300, -1e-300], 0.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn to_dense_round_trips() {
        let v = sample();
        let d = v.to_dense(10);
        assert_eq!(SparseVector::from_dense(&d, 0.0), v);
    }

    #[test]
    fn round_below_removes_mass() {
        let mut v = sample();
        let removed = v.round_below(0.2);
        assert!((removed - 0.125).abs() < 1e-15);
        assert_eq!(v.indices(), &[1, 4]);
    }

    #[test]
    fn round_below_empty_is_noop() {
        let mut v = SparseVector::new();
        assert_eq!(v.round_below(1.0), 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn unit_vector() {
        let v = SparseVector::unit(3, 1.0);
        assert_eq!(v.get(3), 1.0);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn max_entry_prefers_first_on_ties() {
        let v = SparseVector::from_parts(vec![2, 5], vec![0.5, 0.5]);
        assert_eq!(v.max_entry(), Some((2, 0.5)));
    }

    #[test]
    fn empty_sums_are_positive_zero() {
        let v = SparseVector::new();
        assert!(v.sum().is_sign_positive(), "empty sum must be +0.0");
        assert!(v.l1_norm().is_sign_positive(), "empty l1 must be +0.0");
    }

    #[test]
    fn collect_from_pairs() {
        let v: SparseVector = vec![(0u32, 1.0), (9u32, 2.0)].into_iter().collect();
        assert_eq!(v.get(9), 2.0);
    }
}
