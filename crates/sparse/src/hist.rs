//! A fixed-bucket latency histogram with deterministic quantiles.
//!
//! Both the serving layer (`rtk-server`'s per-request metrics) and the bench
//! harness (`BENCH_query.json` / `BENCH_serve.json`) need p50/p95/p99 over
//! many observations without storing them all. This histogram uses a fixed
//! geometric bucket ladder, so recording is O(log buckets), merging is a
//! vector add, and quantiles are reproducible: the reported value is always
//! the *upper edge* of the bucket containing the requested rank (a
//! conservative bound, never an interpolation that shifts with float noise).

/// Number of geometric buckets (plus one overflow bucket at the end).
const BUCKETS: usize = 64;

/// Upper edge of the first bucket, in seconds (1 µs).
const FIRST_EDGE: f64 = 1e-6;

/// Geometric growth factor between bucket edges. `1.5^63 · 1e-6 ≈ 3.2e5`
/// seconds, so the ladder spans 1 µs to ~90 hours before overflowing.
const GROWTH: f64 = 1.5;

/// A fixed-bucket histogram of non-negative durations (seconds).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts observations in `(edge(i-1), edge(i)]`;
    /// `buckets[BUCKETS]` is the overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0; BUCKETS + 1], count: 0, sum: 0.0, max: 0.0 }
    }

    /// Upper edge of bucket `i`, in seconds.
    fn edge(i: usize) -> f64 {
        FIRST_EDGE * GROWTH.powi(i as i32)
    }

    /// Records one observation. Negative or NaN values count as zero.
    pub fn record(&mut self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 { seconds } else { 0.0 };
        // Bucket index via logarithm, clamped to the ladder.
        let idx = if v <= FIRST_EDGE {
            0
        } else {
            let i = ((v / FIRST_EDGE).ln() / GROWTH.ln()).ceil() as i64;
            i.clamp(0, (BUCKETS + 1) as i64 - 1) as usize
        };
        self.buckets[idx.min(BUCKETS)] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded observation (exact, not bucketed).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the upper edge of the bucket
    /// holding the rank-`⌈q·count⌉` observation. Returns 0 when empty; the
    /// overflow bucket reports the exact max instead of an edge.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i >= BUCKETS { self.max } else { Self::edge(i).min(self.max) };
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// `(p50, p95, p99)` in one call — the triple every bench JSON reports.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }

    /// Sum of all observations, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// `(upper_edge_seconds, cumulative_count)` per non-empty prefix of the
    /// ladder, ending with `(+∞, count)` — exactly the shape a Prometheus
    /// `le`-labelled bucket series wants. Trailing all-zero buckets below
    /// the max are skipped so an idle histogram exports compactly.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().take(BUCKETS).enumerate() {
            cumulative += c;
            out.push((Self::edge(i), cumulative));
            if cumulative == self.count {
                break;
            }
        }
        out.push((f64::INFINITY, self.count));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.percentiles(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-5); // 10 µs .. 10 ms
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = h.percentiles();
        // Each reported quantile bounds the true one from above, within one
        // bucket's growth factor.
        assert!((0.005..=0.005 * GROWTH).contains(&p50), "p50={p50}");
        assert!((0.0095..=0.0095 * GROWTH).contains(&p95), "p95={p95}");
        assert!((0.0099..=0.0099 * GROWTH).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(h.max() >= p99);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500 {
            let v = (i as f64 + 1.0) * 3e-6;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.quantile(0.5), whole.quantile(0.5));
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_values_are_absorbed() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(0.0);
        h.record(1e12); // overflow bucket
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(1.0), 1e12); // overflow reports the exact max
    }

    #[test]
    fn cumulative_buckets_end_at_infinity_and_total_count() {
        let mut h = LatencyHistogram::new();
        h.record(5e-6);
        h.record(2e-3);
        let buckets = h.cumulative_buckets();
        let (last_edge, last_count) = *buckets.last().unwrap();
        assert!(last_edge.is_infinite());
        assert_eq!(last_count, 2);
        // Cumulative counts are monotone and edges strictly increase.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        // The ladder stops once every observation is covered.
        assert!(buckets.len() < BUCKETS + 1);
    }

    #[test]
    fn single_observation_quantiles_report_it() {
        let mut h = LatencyHistogram::new();
        h.record(0.02);
        let (p50, p95, p99) = h.percentiles();
        // All quantiles fall in the same bucket; clamped to the exact max.
        assert_eq!(p50, 0.02);
        assert_eq!(p95, 0.02);
        assert_eq!(p99, 0.02);
    }
}
