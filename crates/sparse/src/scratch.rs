//! Dense accumulator with *O(touched)* reset.
//!
//! Batch ink propagation (paper Eqs. 8–9) repeatedly scatters small amounts of
//! ink across a frontier that is tiny compared to the graph. Zeroing a dense
//! `Vec<f64>` between nodes would cost `O(n)` per node and dominate the index
//! build. [`EpochScratch`] instead tracks which slots were touched and resets
//! them lazily via an epoch counter, so a build over `n` nodes costs
//! `O(total ink transfers)`, not `O(n²)`.

/// A dense `f64` accumulator over `0..len` with epoch-based lazy reset.
#[derive(Clone, Debug)]
pub struct EpochScratch {
    values: Vec<f64>,
    epochs: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
}

impl EpochScratch {
    /// Creates a scratch buffer for indices `0..len`, all logically zero.
    pub fn new(len: usize) -> Self {
        Self { values: vec![0.0; len], epochs: vec![0; len], touched: Vec::new(), epoch: 1 }
    }

    /// Logical length of the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of slots touched since the last [`Self::reset`].
    #[inline]
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Current value at `i` (zero unless touched this epoch).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        if self.epochs[i] == self.epoch {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Adds `delta` to slot `i`, marking it touched.
    #[inline]
    pub fn add(&mut self, i: usize, delta: f64) {
        if self.epochs[i] == self.epoch {
            self.values[i] += delta;
        } else {
            self.epochs[i] = self.epoch;
            self.values[i] = delta;
            self.touched.push(i as u32);
        }
    }

    /// Overwrites slot `i` with `value`, marking it touched.
    #[inline]
    pub fn set(&mut self, i: usize, value: f64) {
        if self.epochs[i] != self.epoch {
            self.epochs[i] = self.epoch;
            self.touched.push(i as u32);
        }
        self.values[i] = value;
    }

    /// Logically zeroes the whole buffer in `O(1)` (amortized; a wrap of the
    /// 32-bit epoch counter triggers one full `O(n)` clear every 2³²−1 resets).
    pub fn reset(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.epochs.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Iterates over touched `(index, value)` pairs in *touch order*
    /// (unsorted); zero-valued touched slots are included.
    pub fn iter_touched(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.touched.iter().map(move |&i| (i, self.values[i as usize]))
    }

    /// Collects the touched non-zero entries whose value exceeds `threshold`
    /// into a sorted [`crate::SparseVector`].
    pub fn to_sparse(&self, threshold: f64) -> crate::SparseVector {
        let mut pairs: Vec<(u32, f64)> =
            self.iter_touched().filter(|&(_, v)| v != 0.0 && v.abs() > threshold).collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        crate::SparseVector::from_parts(
            pairs.iter().map(|&(i, _)| i).collect(),
            pairs.iter().map(|&(_, v)| v).collect(),
        )
    }

    /// Sum of all touched values.
    pub fn sum(&self) -> f64 {
        self.touched.iter().map(|&i| self.values[i as usize]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_logically_zero() {
        let s = EpochScratch::new(4);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.touched_len(), 0);
    }

    #[test]
    fn add_and_get() {
        let mut s = EpochScratch::new(4);
        s.add(1, 0.5);
        s.add(1, 0.25);
        s.add(3, 1.0);
        assert_eq!(s.get(1), 0.75);
        assert_eq!(s.get(3), 1.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.touched_len(), 2);
    }

    #[test]
    fn reset_clears_logically() {
        let mut s = EpochScratch::new(4);
        s.add(2, 1.0);
        s.reset();
        assert_eq!(s.get(2), 0.0);
        assert_eq!(s.touched_len(), 0);
        s.add(2, 0.5);
        assert_eq!(s.get(2), 0.5);
    }

    #[test]
    fn set_overwrites() {
        let mut s = EpochScratch::new(4);
        s.add(0, 1.0);
        s.set(0, 0.25);
        assert_eq!(s.get(0), 0.25);
        s.set(1, 2.0);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.touched_len(), 2);
    }

    #[test]
    fn to_sparse_sorts_and_filters() {
        let mut s = EpochScratch::new(8);
        s.add(5, 0.5);
        s.add(1, 1e-12);
        s.add(0, 0.25);
        let v = s.to_sparse(1e-9);
        assert_eq!(v.indices(), &[0, 5]);
        assert_eq!(v.values(), &[0.25, 0.5]);
    }

    #[test]
    fn sum_over_touched() {
        let mut s = EpochScratch::new(4);
        s.add(0, 0.25);
        s.add(3, 0.5);
        assert!((s.sum() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut s = EpochScratch::new(3);
        for round in 0..1000 {
            s.add(round % 3, 1.0);
            assert_eq!(s.get(round % 3), 1.0);
            s.reset();
        }
        assert_eq!(s.get(0), 0.0);
    }
}
