//! Top-K selection and maintenance.
//!
//! The offline index stores, for every node, the `K` largest entries of its
//! lower-bound proximity vector in descending order (`p̂_u(1:K)`, paper
//! §4.1.2). These helpers select that list from dense or sparse data and keep
//! it in descending order with ties broken by smaller index (deterministic
//! across thread counts and platforms).

/// Selects the `k` largest `(index, value)` pairs from a dense slice,
/// descending by value, ties broken by smaller index.
pub fn top_k_of_dense(dense: &[f64], k: usize) -> Vec<(u32, f64)> {
    top_k_of_pairs(dense.iter().enumerate().map(|(i, &v)| (i as u32, v)), k)
}

/// Selects the `k` largest pairs from an arbitrary stream, descending by
/// value, ties broken by smaller index. Zero and negative values are kept
/// (callers filter beforehand when undesired); `k = 0` yields an empty list.
///
/// `O(n)` average via quickselect plus `O(k log k)` for the final sort —
/// this runs once per index-column materialization and once per query-time
/// refinement iteration, so it must not degrade to `O(n·k)`.
pub fn top_k_of_pairs<I>(pairs: I, k: usize) -> Vec<(u32, f64)>
where
    I: IntoIterator<Item = (u32, f64)>,
{
    if k == 0 {
        return Vec::new();
    }
    #[inline]
    fn by_value_desc(a: &(u32, f64), b: &(u32, f64)) -> std::cmp::Ordering {
        b.1.partial_cmp(&a.1).expect("top_k_of_pairs: NaN value").then(a.0.cmp(&b.0))
    }
    let mut all: Vec<(u32, f64)> = pairs.into_iter().collect();
    debug_assert!(all.iter().all(|&(_, v)| v.is_finite()), "top_k_of_pairs: non-finite value");
    if all.len() > k {
        all.select_nth_unstable_by(k - 1, by_value_desc);
        all.truncate(k);
        // The result is retained long-term (index columns, thresholds);
        // dropping the selection buffer's excess capacity keeps memory
        // accounting honest.
        all.shrink_to_fit();
    }
    all.sort_unstable_by(by_value_desc);
    all
}

/// A fixed-capacity descending top-K list of `(index, value)` pairs.
///
/// This is the in-memory representation of one column `p̂_u(1:K)` of the
/// index's lower-bound matrix. Values only ever *increase* across refinements
/// (Prop. 1 of the paper), so the list is rebuilt from the refined vector
/// rather than updated incrementally.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DescendingTopK {
    entries: Vec<(u32, f64)>,
    capacity: usize,
}

impl DescendingTopK {
    /// Creates an empty list with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self { entries: Vec::new(), capacity }
    }

    /// Builds a list from already-selected descending entries.
    ///
    /// # Panics
    /// Panics if `entries` exceed `capacity` or are not descending by value.
    pub fn from_sorted(entries: Vec<(u32, f64)>, capacity: usize) -> Self {
        assert!(entries.len() <= capacity, "DescendingTopK: too many entries");
        for w in entries.windows(2) {
            assert!(w[0].1 >= w[1].1, "DescendingTopK: entries must be descending");
        }
        Self { entries, capacity }
    }

    /// Rebuilds the list from an arbitrary pair stream.
    pub fn rebuild<I: IntoIterator<Item = (u32, f64)>>(&mut self, pairs: I) {
        self.entries = top_k_of_pairs(pairs, self.capacity);
    }

    /// Maximum number of entries retained.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently stored entries (descending by value).
    #[inline]
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of stored entries (≤ capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k`-th largest stored value (1-based), or `0.0` when fewer than `k`
    /// entries exist — matching the paper's convention that absent proximities
    /// are zero lower bounds.
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds the capacity (a `k > K` query must be
    /// rejected before reaching the index).
    pub fn kth_value(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.capacity, "kth_value: k out of range");
        self.entries.get(k - 1).map_or(0.0, |&(_, v)| v)
    }

    /// The value stored for `index`, or 0.0.
    pub fn value_of(&self, index: u32) -> f64 {
        self.entries.iter().find(|&&(i, _)| i == index).map_or(0.0, |&(_, v)| v)
    }

    /// The first `k` values, zero-padded to exactly `k` entries — the
    /// staircase consumed by the upper-bound computation (Alg. 3).
    pub fn prefix_values(&self, k: usize) -> Vec<f64> {
        let mut out: Vec<f64> = self.entries.iter().take(k).map(|&(_, v)| v).collect();
        out.resize(k, 0.0);
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u32, f64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_descending() {
        let v = [0.1, 0.9, 0.3, 0.7, 0.5];
        let top = top_k_of_dense(&v, 3);
        assert_eq!(top, vec![(1, 0.9), (3, 0.7), (4, 0.5)]);
    }

    #[test]
    fn k_larger_than_input_returns_all() {
        let top = top_k_of_dense(&[0.2, 0.1], 5);
        assert_eq!(top, vec![(0, 0.2), (1, 0.1)]);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(top_k_of_dense(&[1.0], 0).is_empty());
    }

    #[test]
    fn ties_break_by_smaller_index() {
        let top = top_k_of_pairs(vec![(5, 0.5), (2, 0.5), (9, 0.5)], 2);
        assert_eq!(top, vec![(2, 0.5), (5, 0.5)]);
    }

    #[test]
    fn streaming_matches_sort_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let n = rng.gen_range(0..200);
            let vals: Vec<f64> = (0..n).map(|_| (rng.gen_range(0..50) as f64) / 10.0).collect();
            let k = rng.gen_range(0..20);
            let fast = top_k_of_dense(&vals, k);
            let mut reference: Vec<(u32, f64)> =
                vals.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
            reference.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            reference.truncate(k);
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn descending_topk_kth_value() {
        let t = DescendingTopK::from_sorted(vec![(4, 0.5), (1, 0.25)], 3);
        assert_eq!(t.kth_value(1), 0.5);
        assert_eq!(t.kth_value(2), 0.25);
        assert_eq!(t.kth_value(3), 0.0); // padded with zero
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn descending_topk_rejects_k_beyond_capacity() {
        let t = DescendingTopK::new(3);
        t.kth_value(4);
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn from_sorted_rejects_ascending() {
        DescendingTopK::from_sorted(vec![(0, 0.1), (1, 0.2)], 4);
    }

    #[test]
    fn prefix_values_pads_with_zeros() {
        let t = DescendingTopK::from_sorted(vec![(0, 0.5)], 4);
        assert_eq!(t.prefix_values(3), vec![0.5, 0.0, 0.0]);
    }

    #[test]
    fn rebuild_replaces_entries() {
        let mut t = DescendingTopK::new(2);
        t.rebuild(vec![(0, 0.1), (1, 0.9), (2, 0.5)]);
        assert_eq!(t.entries(), &[(1, 0.9), (2, 0.5)]);
        assert_eq!(t.value_of(1), 0.9);
        assert_eq!(t.value_of(7), 0.0);
    }
}
