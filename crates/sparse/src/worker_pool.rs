//! A persistent, std-only worker pool with scoped (borrowing) tasks.
//!
//! The parallel hot paths of this workspace — the SpMV applies in
//! `rtk-graph`, the screen phase and batch fan-out in `rtk-query`, and the
//! hub/index builders in `rtk-index` — all follow the same fork/join shape:
//! spawn a handful of workers over borrowed slices, join, continue. Using
//! `std::thread::scope` directly makes every such region pay a full
//! spawn/join round trip; a single reverse top-k query crosses dozens of
//! these regions (one per refinement power iteration), so thread churn
//! dominates small-graph latency.
//!
//! [`WorkerPool`] keeps a fixed set of parked threads alive for the life of
//! the process and re-dispatches them per region via [`WorkerPool::scope`],
//! which mirrors the `std::thread::scope` API: tasks may borrow from the
//! caller's stack, and `scope` does not return until every spawned task has
//! finished (panics are forwarded to the caller). Thread spawn count is
//! therefore *O(pool size)* per process — not per apply, per query, or per
//! refinement iteration — which [`WorkerPool::threads_spawned`] exposes so
//! tests can pin the invariant down.
//!
//! Scheduling details that matter for correctness:
//!
//! * each scope owns its own task queue; the injector only carries "this
//!   scope has work" tickets, so concurrent scopes (e.g. parallel tests)
//!   never steal each other's tasks into the wrong join;
//! * the **caller helps drain its own queue** while waiting. This guarantees
//!   progress even when every pool worker is busy (nested scopes) or the
//!   pool has zero threads, and it means a scope over `N` tasks uses up to
//!   `pool size + 1` execution lanes — the caller's thread was going to
//!   block anyway;
//! * a panicking task poisons nothing: the first payload is captured and
//!   re-thrown from `scope` on the caller's thread after all tasks join.
//!
//! The pool never re-orders observable results by itself — callers are
//! expected to assign each task a disjoint output slot (as all call sites in
//! this workspace do), which keeps the workspace-wide bitwise-determinism
//! contract intact: the pool changes *when* work runs, never *what* it
//! computes.

// The one unsafe block below (a lifetime transmute on boxed tasks) is what
// lets a long-lived pool run borrowing closures; its soundness argument is
// documented at the site and everything else in the crate stays safe.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased task. Stored as `'static` after the scoped transmute; the
/// scope's join barrier is what makes that fiction sound.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Join-barrier bookkeeping for one scope.
#[derive(Default)]
struct ScopeProgress {
    /// Tasks spawned but not yet finished (queued or running).
    pending: usize,
    /// First panic payload observed among this scope's tasks.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Shared state of one `scope` call: its private task queue plus the join
/// barrier the caller blocks on.
#[derive(Default)]
struct ScopeState {
    tasks: Mutex<VecDeque<Task>>,
    progress: Mutex<ScopeProgress>,
    /// Signalled on every task completion (and late spawn) so the waiting
    /// caller can re-check the barrier and keep helping.
    done: Condvar,
}

impl ScopeState {
    fn pop(&self) -> Option<Task> {
        self.tasks.lock().expect("scope queue poisoned").pop_front()
    }

    /// Runs one task, recording a panic instead of unwinding through the
    /// worker, and wakes the scope's caller.
    fn run(&self, task: Task) {
        let outcome = catch_unwind(AssertUnwindSafe(task));
        let mut progress = self.progress.lock().expect("scope progress poisoned");
        if let Err(payload) = outcome {
            progress.panic.get_or_insert(payload);
        }
        progress.pending -= 1;
        drop(progress);
        self.done.notify_all();
    }
}

/// The pool-wide work feed: one ticket per spawned task. Tickets may be
/// stale (the scope's caller already helped that task away) — workers just
/// find the queue empty and go back to sleep.
struct Injector {
    queue: Mutex<InjectorQueue>,
    ready: Condvar,
}

#[derive(Default)]
struct InjectorQueue {
    tickets: VecDeque<Arc<ScopeState>>,
    shutdown: bool,
}

impl Injector {
    fn push(&self, scope: Arc<ScopeState>) {
        let mut queue = self.queue.lock().expect("injector poisoned");
        queue.tickets.push_back(scope);
        drop(queue);
        self.ready.notify_one();
    }
}

/// A fixed-size pool of parked worker threads executing scoped, borrowing
/// tasks. See the [module docs](self) for the design; in short it is
/// `std::thread::scope` without the per-region spawn/join cost.
///
/// ```
/// let pool = rtk_sparse::WorkerPool::new(2);
/// let mut halves = [0u64, 0];
/// let (a, b) = halves.split_at_mut(1);
/// pool.scope(|s| {
///     s.spawn(|| a[0] = (1..=50).sum());
///     s.spawn(|| b[0] = (51..=100).sum());
/// });
/// assert_eq!(halves[0] + halves[1], 5050);
/// assert_eq!(pool.threads_spawned(), 2); // forever, however many scopes run
/// ```
pub struct WorkerPool {
    injector: Arc<Injector>,
    handles: Vec<JoinHandle<()>>,
    /// Total worker threads ever created by this pool — stays equal to the
    /// construction size for the pool's whole life (workers are never
    /// respawned), which is exactly the reuse invariant tests assert.
    spawned: AtomicUsize,
}

impl WorkerPool {
    /// Creates a pool with `size` parked worker threads. `size == 0` is
    /// valid: every scope then runs entirely on the calling thread (the
    /// caller always helps drain its own queue).
    pub fn new(size: usize) -> Self {
        let injector = Arc::new(Injector {
            queue: Mutex::new(InjectorQueue::default()),
            ready: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let feed = Arc::clone(&injector);
            let handle = std::thread::Builder::new()
                .name(format!("rtk-pool-{i}"))
                .spawn(move || worker_loop(&feed))
                .expect("spawning pool worker");
            handles.push(handle);
        }
        Self { injector, handles, spawned: AtomicUsize::new(size) }
    }

    /// The process-wide shared pool, created on first use with one worker
    /// per available core. All library hot paths dispatch through this —
    /// which is what caps the process at *O(cores)* pool threads total.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
            WorkerPool::new(cores)
        })
    }

    /// Number of worker threads in the pool.
    #[inline]
    pub fn size(&self) -> usize {
        self.handles.len()
    }

    /// Total worker threads this pool has ever spawned. Equal to
    /// [`Self::size`] for the pool's whole life: running more scopes never
    /// spawns more threads.
    #[inline]
    pub fn threads_spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Runs `f` with a [`PoolScope`] that can spawn tasks borrowing from the
    /// caller's environment, and returns once **all** spawned tasks have
    /// finished. If any task panicked, the first payload is re-thrown here;
    /// if `f` itself unwinds, all already-spawned tasks are still joined
    /// first so no task can outlive the borrows it captured.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&PoolScope<'_, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::default());
        let scope = PoolScope { pool: self, state: Arc::clone(&state), env: PhantomData };
        let result = {
            // Drop-based join: runs on unwind out of `f` too.
            let _join = JoinGuard { state: &state };
            f(&scope)
        };
        let payload = state.progress.lock().expect("scope progress poisoned").panic.take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        result
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.injector.queue.lock().expect("injector poisoned");
            queue.shutdown = true;
        }
        self.injector.ready.notify_all();
        for handle in self.handles.drain(..) {
            // A worker that panicked outside a task would surface here; tasks
            // themselves are caught, so this join is expected to succeed.
            let _ = handle.join();
        }
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let scope = {
            let mut queue = injector.queue.lock().expect("injector poisoned");
            loop {
                if let Some(scope) = queue.tickets.pop_front() {
                    break scope;
                }
                if queue.shutdown {
                    return;
                }
                queue = injector.ready.wait(queue).expect("injector poisoned");
            }
        };
        // One ticket ↔ at most one task; a stale ticket is a cheap no-op.
        if let Some(task) = scope.pop() {
            scope.run(task);
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]. Mirrors
/// `std::thread::Scope`: tasks may borrow anything that outlives `'env`.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'_, 'env> {
    /// Queues `f` for execution by a pool worker (or by the scope's caller
    /// while it waits). Completion — and any panic — is observed by the
    /// enclosing [`WorkerPool::scope`] call before it returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the task is type-erased to `'static` so a long-lived
        // worker thread can hold it, but it never outlives `'env`: the
        // enclosing `scope` call blocks (in `JoinGuard::drop`) until
        // `pending == 0`, i.e. until this task has finished running, before
        // any `'env` borrow it captured can expire. The box's layout is
        // identical; only the lifetime parameter is erased.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task) };
        // Barrier increment must precede queue publication: a worker may
        // run the task the instant it is visible.
        self.state.progress.lock().expect("scope progress poisoned").pending += 1;
        self.state.tasks.lock().expect("scope queue poisoned").push_back(task);
        self.pool.injector.push(Arc::clone(&self.state));
        // Wake the caller too, in case it is already parked on the barrier
        // with no pool workers to hand the task to.
        self.state.done.notify_all();
    }
}

/// Blocks until every task of `state` has finished, helping to run queued
/// tasks on the current thread while waiting. Implemented as a `Drop` guard
/// so the join also happens when the scope closure unwinds.
struct JoinGuard<'a> {
    state: &'a ScopeState,
}

impl Drop for JoinGuard<'_> {
    fn drop(&mut self) {
        loop {
            while let Some(task) = self.state.pop() {
                self.state.run(task);
            }
            let progress = self.state.progress.lock().expect("scope progress poisoned");
            if progress.pending == 0 {
                return;
            }
            // In-flight tasks on pool workers: wait for one to finish, then
            // loop back and keep helping.
            let _unused = self.state.done.wait(progress).expect("scope progress poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tasks_borrow_and_join_before_scope_returns() {
        let pool = WorkerPool::new(2);
        let mut data = vec![0u64; 64];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn many_scopes_never_respawn_threads() {
        // The acceptance invariant: thread spawn count is O(pool size) per
        // pool lifetime, not O(scopes) — 200 fork/join regions later the
        // pool has still only ever created its construction-time threads.
        let pool = WorkerPool::new(3);
        let ran = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(ran.load(Ordering::Relaxed), 200 * 8);
        assert_eq!(pool.threads_spawned(), 3);
        assert_eq!(pool.size(), 3);
    }

    #[test]
    fn zero_sized_pool_runs_everything_on_the_caller() {
        let pool = WorkerPool::new(0);
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        pool.scope(|s| {
            let seen = &mut seen;
            s.spawn(move || seen.push(std::thread::current().id()));
        });
        assert_eq!(seen, vec![caller]);
        assert_eq!(pool.threads_spawned(), 0);
    }

    #[test]
    fn nested_scopes_make_progress_even_on_a_tiny_pool() {
        // A task that itself opens a scope must not deadlock when every
        // worker is busy: the inner scope's caller (the lone worker) helps
        // drain its own queue.
        let pool = WorkerPool::new(1);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            let total = &total;
            let pool = &pool;
            outer.spawn(move || {
                pool.scope(|inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
        assert_eq!(pool.threads_spawned(), 1);
    }

    #[test]
    fn task_panics_propagate_to_the_scope_caller() {
        let pool = WorkerPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("screen worker exploded"));
                s.spawn(|| { /* healthy sibling still joins */ });
            });
        }));
        let payload = outcome.expect_err("panic must cross the scope");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "screen worker exploded");
        // The pool survives a panicked task and keeps serving scopes.
        let mut x = 0u32;
        pool.scope(|s| {
            let x = &mut x;
            s.spawn(move || *x = 7);
        });
        assert_eq!(x, 7);
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_machine() {
        let pool = WorkerPool::global();
        assert!(std::ptr::eq(pool, WorkerPool::global()));
        assert_eq!(pool.threads_spawned(), pool.size());
        let mut out = vec![0u32; 8];
        pool.scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
