//! Numeric substrate for the reverse top-k RWR library.
//!
//! This crate provides the small, allocation-conscious building blocks shared
//! by every other crate in the workspace:
//!
//! * [`dense`] — kernels over dense `f64` slices (norms, axpy, argmax, …);
//! * [`SparseVector`] — a compact sorted `(index, value)` vector used to store
//!   per-node Bookmark-Coloring state (residues, retained ink, hub ink);
//! * [`EpochScratch`] — a dense accumulator with *O(touched)* reset, the
//!   workhorse behind batch ink propagation;
//! * [`ScratchPool`] — a mutexed free list recycling per-thread scratch
//!   objects across parallel query phases;
//! * [`WorkerPool`] — a persistent pool of parked worker threads with a
//!   `std::thread::scope`-shaped borrowing-task API, so fork/join hot paths
//!   stop paying a spawn/join round trip per region;
//! * [`topk`] — descending top-K selection and maintenance;
//! * [`LatencyHistogram`] — a fixed-bucket histogram with deterministic
//!   p50/p95/p99, shared by the serving metrics and the bench harness;
//! * [`codec`] — a minimal versioned little-endian binary codec used for graph
//!   and index persistence (hand-rolled instead of serde: byte-level control,
//!   no derive machinery, round-trip tested).
//!
//! Everything here is deliberately independent of graph types: indices are
//! plain `usize`/`u32` and values are `f64`.

// `deny` instead of `forbid`: the worker pool needs exactly one audited
// unsafe block (a scoped-task lifetime erasure, documented at the site);
// every other module remains unsafe-free and cannot opt out silently.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dense;
pub mod hist;
pub mod pool;
pub mod scratch;
pub mod sparse_vec;
pub mod topk;
pub mod worker_pool;

pub use hist::LatencyHistogram;
pub use pool::ScratchPool;
pub use scratch::EpochScratch;
pub use sparse_vec::SparseVector;
pub use topk::{top_k_of_dense, top_k_of_pairs, DescendingTopK};
pub use worker_pool::{PoolScope, WorkerPool};
