//! A tiny object pool for per-thread scratch reuse.
//!
//! The parallel query path hands each worker thread its own solver scratch
//! (dense epoch buffers sized to the graph). Allocating those per query would
//! dominate small queries, so sessions keep a [`ScratchPool`]: workers take
//! an object when they start and put it back when they finish, and the
//! buffers survive across queries. The pool is deliberately dumb — a mutexed
//! free list, locked only at worker start/end, never inside hot loops.

use std::sync::Mutex;

/// A mutexed free list of reusable scratch objects.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self { free: Mutex::new(Vec::new()) }
    }

    /// Takes a pooled object, or builds a fresh one with `make` when the
    /// pool is empty (first use, or more concurrent workers than ever
    /// before).
    pub fn take_with(&self, make: impl FnOnce() -> T) -> T {
        let pooled = self.free.lock().expect("scratch pool poisoned").pop();
        pooled.unwrap_or_else(make)
    }

    /// Returns an object to the pool for the next worker.
    pub fn put(&self, item: T) {
        self.free.lock().expect("scratch pool poisoned").push(item);
    }

    /// Number of idle objects currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }

    /// Drops every pooled object (e.g. when the graph they were sized for
    /// goes away).
    pub fn clear(&self) {
        self.free.lock().expect("scratch pool poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_makes_when_empty_and_reuses_after_put() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let mut a = pool.take_with(|| vec![1, 2, 3]);
        assert_eq!(a, vec![1, 2, 3]);
        a.push(4);
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        // Reuse keeps the mutated object — pools recycle, not reset.
        let b = pool.take_with(|| unreachable!("pool should not be empty"));
        assert_eq!(b, vec![1, 2, 3, 4]);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn concurrent_workers_share_the_pool() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        let mut v = pool.take_with(|| Vec::with_capacity(16));
                        v.push(1);
                        pool.put(v);
                    }
                });
            }
        });
        // At most 4 objects ever existed.
        assert!(pool.idle() <= 4);
        pool.clear();
        assert_eq!(pool.idle(), 0);
    }
}
