//! Minimal versioned little-endian binary codec.
//!
//! Both the graph binary format and the index snapshot format are built from
//! these primitives: fixed-width little-endian integers/floats and
//! `u64`-length-prefixed sequences, preceded by an 8-byte magic tag and a
//! `u32` format version. A hand-rolled codec keeps the on-disk layout
//! explicit, auditable and dependency-free (see DESIGN.md §3).

use std::io::{self, Read, Write};

/// Errors produced while decoding a binary stream.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the expected magic tag.
    BadMagic {
        /// Magic expected by the caller.
        expected: [u8; 8],
        /// Magic actually present in the stream.
        found: [u8; 8],
    },
    /// The format version is newer than this library understands.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Greatest version this build can decode.
        supported: u32,
    },
    /// A declared length is implausibly large or inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            DecodeError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (max supported {supported})")
            }
            DecodeError::Corrupt(msg) => write!(f, "corrupt stream: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Sanity cap on declared sequence lengths (1 billion elements) so corrupt
/// streams fail fast instead of attempting absurd allocations. Callers that
/// know a tighter bound (a node count, a frame size, a `max_k`) should use
/// the `*_bounded` readers instead — the bound is checked *before* any
/// allocation happens.
pub const MAX_SEQ_LEN: u64 = 1_000_000_000;

/// Writes the 8-byte magic tag followed by a `u32` version.
pub fn write_header<W: Write>(w: &mut W, magic: &[u8; 8], version: u32) -> io::Result<()> {
    w.write_all(magic)?;
    write_u32(w, version)
}

/// Reads and validates a header written by [`write_header`]; returns the
/// stream's version (≤ `max_version`).
pub fn read_header<R: Read>(
    r: &mut R,
    magic: &[u8; 8],
    max_version: u32,
) -> Result<u32, DecodeError> {
    let mut found = [0u8; 8];
    r.read_exact(&mut found)?;
    if &found != magic {
        return Err(DecodeError::BadMagic { expected: *magic, found });
    }
    let version = read_u32(r)?;
    if version > max_version {
        return Err(DecodeError::UnsupportedVersion { found: version, supported: max_version });
    }
    Ok(version)
}

/// Writes a `u32` little-endian.
pub fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u32` little-endian.
pub fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` little-endian.
pub fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads a `u64` little-endian.
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes an `f64` as its little-endian IEEE-754 bits.
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Reads an `f64` from little-endian IEEE-754 bits.
pub fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Validates a declared length against a caller-supplied bound (itself
/// clamped by [`MAX_SEQ_LEN`]) *before* anything is allocated, so a corrupt
/// or malicious length prefix cannot trigger a huge `Vec` reservation.
pub fn check_len(len: u64, bound: u64, what: &str) -> Result<usize, DecodeError> {
    let bound = bound.min(MAX_SEQ_LEN);
    if len > bound {
        return Err(DecodeError::Corrupt(format!(
            "{what}: declared length {len} exceeds bound {bound}"
        )));
    }
    Ok(len as usize)
}

/// Writes a `u64`-length-prefixed slice of `u32`s.
pub fn write_u32_seq<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        write_u32(w, v)?;
    }
    Ok(())
}

/// Reads a sequence written by [`write_u32_seq`], bounded by [`MAX_SEQ_LEN`].
pub fn read_u32_seq<R: Read>(r: &mut R) -> Result<Vec<u32>, DecodeError> {
    read_u32_seq_bounded(r, MAX_SEQ_LEN)
}

/// Reads a sequence written by [`write_u32_seq`], rejecting declared lengths
/// above `bound` (e.g. a node count or frame size) before allocating.
pub fn read_u32_seq_bounded<R: Read>(r: &mut R, bound: u64) -> Result<Vec<u32>, DecodeError> {
    let len = check_len(read_u64(r)?, bound, "u32 sequence")?;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}

/// Writes a `u64`-length-prefixed slice of `f64`s.
pub fn write_f64_seq<W: Write>(w: &mut W, vs: &[f64]) -> io::Result<()> {
    write_u64(w, vs.len() as u64)?;
    for &v in vs {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Reads a sequence written by [`write_f64_seq`], bounded by [`MAX_SEQ_LEN`].
pub fn read_f64_seq<R: Read>(r: &mut R) -> Result<Vec<f64>, DecodeError> {
    read_f64_seq_bounded(r, MAX_SEQ_LEN)
}

/// Reads a sequence written by [`write_f64_seq`], rejecting declared lengths
/// above `bound` before allocating.
pub fn read_f64_seq_bounded<R: Read>(r: &mut R, bound: u64) -> Result<Vec<f64>, DecodeError> {
    let len = check_len(read_u64(r)?, bound, "f64 sequence")?;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(read_f64(r)?);
    }
    Ok(out)
}

/// Writes a `u64`-length-prefixed byte string.
pub fn write_bytes<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    write_u64(w, bytes.len() as u64)?;
    w.write_all(bytes)
}

/// Reads a byte string written by [`write_bytes`], rejecting declared
/// lengths above `bound` before allocating.
pub fn read_bytes_bounded<R: Read>(r: &mut R, bound: u64) -> Result<Vec<u8>, DecodeError> {
    let len = check_len(read_u64(r)?, bound, "byte string")?;
    let mut out = vec![0u8; len];
    r.read_exact(&mut out)?;
    Ok(out)
}

/// Writes a sparse vector as two length-prefixed parallel sequences.
pub fn write_sparse_vector<W: Write>(w: &mut W, v: &crate::SparseVector) -> io::Result<()> {
    write_u32_seq(w, v.indices())?;
    write_f64_seq(w, v.values())
}

/// Reads a sparse vector written by [`write_sparse_vector`], bounded by
/// [`MAX_SEQ_LEN`] entries.
pub fn read_sparse_vector<R: Read>(r: &mut R) -> Result<crate::SparseVector, DecodeError> {
    read_sparse_vector_bounded(r, MAX_SEQ_LEN)
}

/// Reads a sparse vector written by [`write_sparse_vector`], rejecting nnz
/// counts above `bound` (typically the dimension) before allocating.
pub fn read_sparse_vector_bounded<R: Read>(
    r: &mut R,
    bound: u64,
) -> Result<crate::SparseVector, DecodeError> {
    let indices = read_u32_seq_bounded(r, bound)?;
    let values = read_f64_seq_bounded(r, bound)?;
    if indices.len() != values.len() {
        return Err(DecodeError::Corrupt(format!(
            "sparse vector: {} indices but {} values",
            indices.len(),
            values.len()
        )));
    }
    if indices.windows(2).any(|w| w[0] >= w[1]) {
        return Err(DecodeError::Corrupt("sparse vector: indices not strictly increasing".into()));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(DecodeError::Corrupt("sparse vector: non-finite value".into()));
    }
    Ok(crate::SparseVector::from_parts(indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseVector;
    use std::io::Cursor;

    const MAGIC: &[u8; 8] = b"RTKTEST1";

    #[test]
    fn scalars_round_trip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF).unwrap();
        write_u64(&mut buf, u64::MAX - 1).unwrap();
        write_f64(&mut buf, -0.15).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_u32(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 1);
        assert_eq!(read_f64(&mut r).unwrap(), -0.15);
    }

    #[test]
    fn sequences_round_trip() {
        let mut buf = Vec::new();
        write_u32_seq(&mut buf, &[1, 2, 3]).unwrap();
        write_f64_seq(&mut buf, &[0.5, 0.25]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_u32_seq(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(read_f64_seq(&mut r).unwrap(), vec![0.5, 0.25]);
    }

    #[test]
    fn empty_sequences_round_trip() {
        let mut buf = Vec::new();
        write_u32_seq(&mut buf, &[]).unwrap();
        let mut r = Cursor::new(buf);
        assert!(read_u32_seq(&mut r).unwrap().is_empty());
    }

    #[test]
    fn sparse_vector_round_trips() {
        let v = SparseVector::from_parts(vec![0, 7, 9], vec![0.5, 0.125, 1e-9]);
        let mut buf = Vec::new();
        write_sparse_vector(&mut buf, &v).unwrap();
        let back = read_sparse_vector(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn header_round_trips_and_validates() {
        let mut buf = Vec::new();
        write_header(&mut buf, MAGIC, 2).unwrap();
        let v = read_header(&mut Cursor::new(buf.clone()), MAGIC, 3).unwrap();
        assert_eq!(v, 2);

        let err = read_header(&mut Cursor::new(buf.clone()), b"WRONGMAG", 3).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));

        let err = read_header(&mut Cursor::new(buf), MAGIC, 1).unwrap_err();
        assert!(matches!(err, DecodeError::UnsupportedVersion { found: 2, supported: 1 }));
    }

    #[test]
    fn corrupt_sparse_vector_is_rejected() {
        // Mismatched lengths.
        let mut buf = Vec::new();
        write_u32_seq(&mut buf, &[1, 2]).unwrap();
        write_f64_seq(&mut buf, &[0.5]).unwrap();
        assert!(matches!(
            read_sparse_vector(&mut Cursor::new(buf)).unwrap_err(),
            DecodeError::Corrupt(_)
        ));

        // Unsorted indices.
        let mut buf = Vec::new();
        write_u32_seq(&mut buf, &[2, 1]).unwrap();
        write_f64_seq(&mut buf, &[0.5, 0.5]).unwrap();
        assert!(matches!(
            read_sparse_vector(&mut Cursor::new(buf)).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn absurd_length_fails_fast() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(matches!(
            read_u32_seq(&mut Cursor::new(buf)).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn bounded_readers_reject_before_reading_payload() {
        // A declared length just over the caller's bound must fail as
        // Corrupt even though the stream has no payload bytes at all —
        // proof the check happens before any allocation/read.
        let mut buf = Vec::new();
        write_u64(&mut buf, 11).unwrap();
        assert!(matches!(
            read_u32_seq_bounded(&mut Cursor::new(buf.clone()), 10).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
        assert!(matches!(
            read_f64_seq_bounded(&mut Cursor::new(buf.clone()), 10).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
        assert!(matches!(
            read_bytes_bounded(&mut Cursor::new(buf), 10).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn bounded_sparse_vector_respects_dimension() {
        let v = SparseVector::from_parts(vec![0, 3, 9], vec![0.5, 0.25, 0.125]);
        let mut buf = Vec::new();
        write_sparse_vector(&mut buf, &v).unwrap();
        // nnz = 3 fits a bound of 3 …
        assert_eq!(read_sparse_vector_bounded(&mut Cursor::new(buf.clone()), 3).unwrap(), v);
        // … but not a bound of 2.
        assert!(matches!(
            read_sparse_vector_bounded(&mut Cursor::new(buf), 2).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn bytes_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello wire").unwrap();
        let back = read_bytes_bounded(&mut Cursor::new(buf), 64).unwrap();
        assert_eq!(back, b"hello wire");
    }

    #[test]
    fn check_len_clamps_to_global_cap() {
        // Even a huge caller bound never admits more than MAX_SEQ_LEN.
        assert!(check_len(MAX_SEQ_LEN + 1, u64::MAX, "seq").is_err());
        assert_eq!(check_len(5, u64::MAX, "seq").unwrap(), 5);
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 10).unwrap(); // declares 10 elements, provides none
        assert!(matches!(read_u32_seq(&mut Cursor::new(buf)).unwrap_err(), DecodeError::Io(_)));
    }
}
