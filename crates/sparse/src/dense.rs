//! Kernels over dense `f64` slices.
//!
//! These are the hot inner loops of the power-method solvers; they operate on
//! plain slices so the compiler can elide bounds checks through iteration.

/// Returns the L1 norm `Σ|x_i|` of `x`.
#[inline]
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Returns the L∞ norm `max |x_i|` of `x` (0.0 for an empty slice).
#[inline]
pub fn linf_norm(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Returns the L1 distance `Σ|x_i − y_i|` between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn l1_distance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "l1_distance: length mismatch");
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

/// Sets every element of `x` to zero.
#[inline]
pub fn fill_zero(x: &mut [f64]) {
    x.fill(0.0);
}

/// In-place `y ← y + a·x` (axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// In-place `x ← a·x`.
#[inline]
pub fn scale(x: &mut [f64], a: f64) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Index of the largest element (first one on ties); `None` when empty.
#[inline]
pub fn argmax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_v = x[0];
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    Some(best)
}

/// The `k`-th largest value of `x` (1-based `k`), or 0.0 when `k > x.len()`.
///
/// This is the quantity `p̂_u(k)` the paper compares proximities against:
/// entries absent from a sparse vector count as zeros, so a short vector's
/// k-th largest value is zero rather than undefined.
pub fn kth_largest(x: &[f64], k: usize) -> f64 {
    assert!(k >= 1, "kth_largest: k must be ≥ 1");
    if k > x.len() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = x.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("NaN in kth_largest"));
    sorted[k - 1]
}

/// True when `x` and `y` agree to within absolute tolerance `tol` elementwise.
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_norm_sums_absolute_values() {
        assert_eq!(l1_norm(&[1.0, -2.0, 3.0]), 6.0);
        assert_eq!(l1_norm(&[]), 0.0);
    }

    #[test]
    fn linf_norm_takes_max_abs() {
        assert_eq!(linf_norm(&[1.0, -5.0, 3.0]), 5.0);
        assert_eq!(linf_norm(&[]), 0.0);
    }

    #[test]
    fn l1_distance_matches_manual() {
        assert_eq!(l1_distance(&[1.0, 2.0], &[3.0, 0.5]), 2.0 + 1.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn l1_distance_rejects_mismatched_lengths() {
        l1_distance(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, 1.0, -1.0]);
    }

    #[test]
    fn scale_multiplies_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(&mut x, 0.5);
        assert_eq!(x, vec![0.5, -1.0]);
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn kth_largest_basic_and_out_of_range() {
        let x = [0.1, 0.4, 0.2, 0.3];
        assert_eq!(kth_largest(&x, 1), 0.4);
        assert_eq!(kth_largest(&x, 3), 0.2);
        assert_eq!(kth_largest(&x, 4), 0.1);
        assert_eq!(kth_largest(&x, 5), 0.0);
    }

    #[test]
    fn fill_zero_clears() {
        let mut x = vec![1.0, 2.0];
        fill_zero(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-12, 2.0 - 1e-12], 1e-9));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-3));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1e-3));
    }
}
