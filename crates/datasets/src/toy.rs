//! The paper's 6-node running example (Figures 1–2).
//!
//! The figure itself does not list the edges; we recovered them by inverting
//! the printed proximity matrix (`A = (I − α·P⁻¹)/(1−α)` with `α = 0.15`)
//! and rounding the transition entries to unit fractions. The forward
//! computation reproduces every printed value of Figure 1 to its two
//! decimals, and `B = 1` degree-based hub selection yields hubs {1, 2}
//! (1-based) exactly as the paper states.

use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

/// The proximity matrix of Figure 1, `TOY_PROXIMITY_MATRIX[u][v] = p_u(v)`
/// (0-based, two-decimal values as printed in the paper).
pub const TOY_PROXIMITY_MATRIX: [[f64; 6]; 6] = [
    [0.32, 0.28, 0.12, 0.13, 0.06, 0.09],
    [0.24, 0.39, 0.17, 0.10, 0.04, 0.07],
    [0.24, 0.29, 0.27, 0.10, 0.04, 0.07],
    [0.19, 0.31, 0.13, 0.23, 0.10, 0.05],
    [0.20, 0.33, 0.14, 0.08, 0.18, 0.06],
    [0.18, 0.30, 0.13, 0.14, 0.06, 0.20],
];

/// Edges of the toy graph, 0-based `(from, to)`.
pub const TOY_EDGES: [(u32, u32); 12] = [
    (0, 1),
    (0, 3),
    (0, 5),
    (1, 0),
    (1, 2),
    (2, 0),
    (2, 1),
    (3, 1),
    (3, 4),
    (4, 1),
    (5, 1),
    (5, 3),
];

/// Builds the toy graph (6 nodes, 12 edges, no dangling nodes).
pub fn toy_graph() -> DiGraph {
    GraphBuilder::from_edges(6, &TOY_EDGES, DanglingPolicy::Error)
        .expect("toy graph is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure_1() {
        let g = toy_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 12);
        // Hubs of Figure 2: node 1 (0-based 0) has max out-degree 3,
        // node 2 (0-based 1) has max in-degree 5.
        assert_eq!(g.out_degree(0), 3);
        assert_eq!(g.in_degree(1), 5);
    }

    #[test]
    fn matrix_constants_are_column_stochastic_to_print_precision() {
        for (u, row) in TOY_PROXIMITY_MATRIX.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 0.02, "row {u} sums to {sum}");
        }
    }
}
