//! Deterministic synthetic datasets mirroring the paper's evaluation graphs.
//!
//! The paper evaluates on SNAP/LAW crawls (Web-stanford-cs, Epinions,
//! Web-stanford, Web-google), the Webspam-uk2006 host graph, and a DBLP
//! co-authorship network — none of which are available offline. Per the
//! substitution rules in `DESIGN.md` §4, this crate generates analogues with
//! matched degree skew and (scaled) size from fixed seeds, so every
//! experiment in the harness is reproducible bit-for-bit.
//!
//! * [`toy_graph`] — the paper's 6-node running example, recovered *exactly*
//!   from Figure 1's proximity matrix (see `DESIGN.md` §3);
//! * [`web`] — R-MAT web-crawl analogues in four sizes;
//! * [`epinions`] — a reciprocated scale-free trust network;
//! * [`webspam`] — a labeled host graph with planted spam farms (§5.4);
//! * [`dblp`] — a weighted co-authorship network with planted prolific
//!   authors (§5.4, Table 3);
//! * [`registry`] — descriptors tying each dataset to the Table 2 / Figure
//!   5–9 experiment parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dblp;
pub mod epinions;
pub mod registry;
pub mod toy;
pub mod web;
pub mod webspam;

pub use dblp::{dblp_sim, CoauthorConfig, CoauthorDataset};
pub use epinions::{epinions_sim, EpinionsConfig};
pub use registry::{paper_datasets, DatasetSpec};
pub use toy::{toy_graph, TOY_PROXIMITY_MATRIX};
pub use web::{web_cs_sim, web_cs_small, web_google_sim, web_std_sim, WebConfig};
pub use webspam::{webspam_sim, HostLabel, WebspamConfig, WebspamDataset};
