//! R-MAT analogues of the paper's web crawls.
//!
//! | Paper graph | |V| / |E| | Ours (default) | |V| / |E| target |
//! |---|---|---|---|
//! | Web-stanford-cs | 9,914 / 36,854 | [`web_cs_sim`] | 10,000 / 37,000 |
//! | — (Figure 8 helper) | — | [`web_cs_small`] | 3,000 / 12,000 |
//! | Web-stanford | 281,903 / 2,312,497 | [`web_std_sim`] | 50,000 / 400,000 |
//! | Web-google | 875,713 / 5,105,039 | [`web_google_sim`] | 100,000 / 580,000 |
//!
//! The two large crawls are scaled down (~1/5.6 and ~1/8.75) so the whole
//! evaluation runs on one machine; edge/node ratios are preserved. Seeds are
//! fixed; pass a custom [`WebConfig`] for other sizes.

use rtk_graph::gen::{rmat, RmatConfig};
use rtk_graph::DiGraph;

/// Size/seed parameters for a web-crawl analogue.
#[derive(Clone, Copy, Debug)]
pub struct WebConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of distinct directed edges before dangling repair.
    pub edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WebConfig {
    /// Builds the graph (R-MAT with web-like partition).
    pub fn build(&self) -> DiGraph {
        rmat(&RmatConfig::new(self.nodes, self.edges, self.seed))
            .expect("web config parameters are valid")
    }
}

/// Web-stanford-cs analogue: 10,000 nodes / ~37k edges.
pub fn web_cs_sim() -> DiGraph {
    WebConfig { nodes: 10_000, edges: 37_000, seed: 0xC501 }.build()
}

/// Small web crawl for the Figure 8 IBF comparison (the full matrix of even
/// this 3,000-node graph already takes 72 MB): 3,000 nodes / ~12k edges.
pub fn web_cs_small() -> DiGraph {
    WebConfig { nodes: 3_000, edges: 12_000, seed: 0xC502 }.build()
}

/// Web-stanford analogue (scaled ~1/5.6): 50,000 nodes / ~400k edges.
pub fn web_std_sim() -> DiGraph {
    WebConfig { nodes: 50_000, edges: 400_000, seed: 0x57D0 }.build()
}

/// Web-google analogue (scaled ~1/8.75): 100,000 nodes / ~580k edges.
pub fn web_google_sim() -> DiGraph {
    WebConfig { nodes: 100_000, edges: 580_000, seed: 0x600613 }.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::degree::{degree_stats, DegreeKind};

    #[test]
    fn web_cs_small_matches_spec() {
        let g = web_cs_small();
        assert_eq!(g.node_count(), 3_000);
        assert!(g.edge_count() >= 12_000);
        assert!(g.dangling_nodes().is_empty());
    }

    #[test]
    fn web_cs_sim_is_deterministic_and_skewed() {
        let a = web_cs_sim();
        let b = web_cs_sim();
        assert_eq!(a, b);
        let s = degree_stats(&a, DegreeKind::In);
        assert!(s.max as f64 > 10.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn custom_config_builds() {
        let g = WebConfig { nodes: 500, edges: 2_000, seed: 7 }.build();
        assert_eq!(g.node_count(), 500);
    }
}
