//! Webspam host-graph analogue with planted spam farms (paper §5.4).
//!
//! The paper's Webspam-uk2006 host graph has 11,402 hosts (8,123 normal,
//! 2,113 spam, rest undecided) and 730,774 edges; reverse top-5 sets of spam
//! hosts were ~96% spam and those of normal hosts ~97% normal. The generator
//! plants that structure explicitly:
//!
//! * **normal hosts** form one preferential-attachment web;
//! * **spam hosts** are partitioned into *link farms* — dense near-cliques
//!   whose members overwhelmingly cite each other (the classic boosting
//!   topology SpamRank exploits);
//! * a small fraction of cross-links runs spam → normal (spammers citing
//!   reputable sites for camouflage) and an even smaller one normal → spam
//!   (hijacked/accidental links).
//!
//! Reverse top-k homophily then *emerges* from the topology rather than
//! being wired into labels.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

/// Ground-truth label of one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostLabel {
    /// A legitimate host.
    Normal,
    /// A spam host (member of a link farm).
    Spam,
    /// Unlabeled (the paper's dataset has these too).
    Undecided,
}

/// Parameters for [`webspam_sim`].
#[derive(Clone, Copy, Debug)]
pub struct WebspamConfig {
    /// Total hosts.
    pub nodes: usize,
    /// Fraction of spam hosts (paper ≈ 18.5%; default 0.2).
    pub spam_fraction: f64,
    /// Fraction of undecided hosts (default 0.1).
    pub undecided_fraction: f64,
    /// Spam-farm size range (each farm is a dense near-clique).
    pub farm_size: (usize, usize),
    /// Out-edges per normal host toward other normal hosts.
    pub normal_out_degree: usize,
    /// Probability a spam host adds one camouflage edge to a normal host.
    pub spam_to_normal_prob: f64,
    /// Probability a normal host adds one (hijacked) edge to a spam host.
    pub normal_to_spam_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebspamConfig {
    fn default() -> Self {
        Self {
            nodes: 8_000,
            spam_fraction: 0.2,
            undecided_fraction: 0.1,
            farm_size: (15, 40),
            normal_out_degree: 18,
            spam_to_normal_prob: 0.25,
            normal_to_spam_prob: 0.01,
            seed: 0x59A3,
        }
    }
}

/// A labeled host graph.
#[derive(Clone, Debug)]
pub struct WebspamDataset {
    /// The host graph.
    pub graph: DiGraph,
    /// Per-node ground-truth labels.
    pub labels: Vec<HostLabel>,
}

impl WebspamDataset {
    /// Nodes carrying `label`.
    pub fn nodes_with(&self, label: HostLabel) -> Vec<u32> {
        (0..self.graph.node_count() as u32)
            .filter(|&u| self.labels[u as usize] == label)
            .collect()
    }
}

/// Generates the labeled host graph.
///
/// # Panics
/// Panics on degenerate parameters (fractions outside `[0,1)`, empty farms).
pub fn webspam_sim(config: &WebspamConfig) -> WebspamDataset {
    assert!(config.nodes >= 100, "webspam_sim: need at least 100 hosts");
    assert!(
        config.spam_fraction > 0.0
            && config.undecided_fraction >= 0.0
            && config.spam_fraction + config.undecided_fraction < 1.0,
        "webspam_sim: invalid label fractions"
    );
    assert!(
        config.farm_size.0 >= 2 && config.farm_size.0 <= config.farm_size.1,
        "webspam_sim: invalid farm size range"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let spam_count = (n as f64 * config.spam_fraction) as usize;
    let undecided_count = (n as f64 * config.undecided_fraction) as usize;
    let normal_count = n - spam_count - undecided_count;

    // Layout: [0, normal_count) normal, then spam, then undecided.
    let mut labels = Vec::with_capacity(n);
    labels.extend(std::iter::repeat_n(HostLabel::Normal, normal_count));
    labels.extend(std::iter::repeat_n(HostLabel::Spam, spam_count));
    labels.extend(std::iter::repeat_n(HostLabel::Undecided, undecided_count));

    let mut builder = GraphBuilder::new(n);
    let add = |b: &mut GraphBuilder, f: u32, t: u32| {
        if f != t {
            b.add_edge(f, t).expect("endpoints in range");
        }
    };

    // Normal web: preferential attachment among normal hosts.
    let mut urn: Vec<u32> = vec![0, 1];
    add(&mut builder, 0, 1);
    add(&mut builder, 1, 0);
    for v in 2..normal_count as u32 {
        let attach = config.normal_out_degree.min(v as usize);
        for _ in 0..attach {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v {
                add(&mut builder, v, t);
                urn.push(t);
            }
        }
        urn.push(v);
    }

    // Spam farms: partition spam ids into near-cliques.
    let spam_lo = normal_count as u32;
    let spam_hi = (normal_count + spam_count) as u32;
    let mut farm_start = spam_lo;
    while farm_start < spam_hi {
        let size = rng.gen_range(config.farm_size.0..=config.farm_size.1) as u32;
        let farm_end = (farm_start + size).min(spam_hi);
        for a in farm_start..farm_end {
            for b in farm_start..farm_end {
                if a != b && rng.gen_bool(0.8) {
                    add(&mut builder, a, b);
                }
            }
            if rng.gen_bool(config.spam_to_normal_prob) && normal_count > 0 {
                let t = rng.gen_range(0..normal_count) as u32;
                add(&mut builder, a, t);
            }
        }
        farm_start = farm_end;
    }

    // Rare normal → spam links.
    for u in 0..normal_count as u32 {
        if spam_count > 0 && rng.gen_bool(config.normal_to_spam_prob) {
            let t = spam_lo + rng.gen_range(0..spam_count) as u32;
            add(&mut builder, u, t);
        }
    }

    // Undecided hosts link mostly to normal hosts, occasionally to spam.
    // Their out-degree matches normal hosts: low-degree nodes concentrate
    // their proximity on few targets and would otherwise flood every
    // reverse top-k set they point into.
    let undecided_lo = spam_hi;
    for u in undecided_lo..n as u32 {
        for _ in 0..config.normal_out_degree {
            let t = if rng.gen_bool(0.85) || spam_count == 0 {
                rng.gen_range(0..normal_count.max(1)) as u32
            } else {
                spam_lo + rng.gen_range(0..spam_count) as u32
            };
            add(&mut builder, u, t);
        }
    }

    let graph = builder.build(DanglingPolicy::SelfLoop).expect("non-empty graph");
    WebspamDataset { graph, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebspamDataset {
        webspam_sim(&WebspamConfig { nodes: 600, ..Default::default() })
    }

    #[test]
    fn label_fractions_match_config() {
        let d = small();
        let spam = d.nodes_with(HostLabel::Spam).len();
        let undecided = d.nodes_with(HostLabel::Undecided).len();
        assert_eq!(spam, 120);
        assert_eq!(undecided, 60);
        assert_eq!(d.labels.len(), 600);
    }

    #[test]
    fn farms_are_dense_and_web_is_sparse() {
        let d = small();
        let spam = d.nodes_with(HostLabel::Spam);
        let normal = d.nodes_with(HostLabel::Normal);
        let avg_deg = |nodes: &[u32]| {
            nodes.iter().map(|&u| d.graph.out_degree(u)).sum::<usize>() as f64 / nodes.len() as f64
        };
        assert!(
            avg_deg(&spam) > avg_deg(&normal),
            "spam {} vs normal {}",
            avg_deg(&spam),
            avg_deg(&normal)
        );
    }

    #[test]
    fn spam_links_mostly_stay_in_farms() {
        let d = small();
        let mut intra = 0usize;
        let mut cross = 0usize;
        for (f, t, _) in d.graph.edges() {
            if d.labels[f as usize] == HostLabel::Spam {
                if d.labels[t as usize] == HostLabel::Spam {
                    intra += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(intra > 5 * cross, "intra {intra} vs cross {cross}");
    }

    #[test]
    fn deterministic_and_repaired() {
        let a = small();
        let b = small();
        assert_eq!(a.graph, b.graph);
        assert!(a.graph.dangling_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid label fractions")]
    fn rejects_bad_fractions() {
        webspam_sim(&WebspamConfig {
            spam_fraction: 0.9,
            undecided_fraction: 0.2,
            ..Default::default()
        });
    }
}
