//! Weighted co-authorship network with planted prolific authors
//! (paper §5.4, Table 3).
//!
//! The paper extracts a DBLP subgraph (44,528 authors / 121,352 edges) and
//! weights transitions by co-authorship counts: `a_{i,j} = w_{i,j}/w_j` where
//! `w_{i,j}` counts papers co-authored by `i` and `j` and `w_j` counts `j`'s
//! papers. We synthesize the same structure with an affiliation model:
//!
//! * authors join research *communities*;
//! * "papers" draw 2–4 authors, usually from one community, occasionally
//!   across communities;
//! * a handful of planted **prolific authors** write far more papers and
//!   collaborate across all communities — these play the role of the
//!   Yu/Han/Faloutsos rows of Table 3, whose reverse top-5 lists dwarf their
//!   co-author counts.
//!
//! One normalization deviation (documented in DESIGN.md): the paper's
//! `Σ_i w_{i,j}` can exceed `w_j` when papers have 3+ authors, making its
//! transition matrix super-stochastic; we normalize each column by its actual
//! outgoing weight so the RWR fixpoint (Eq. 1) exists. Relative edge weights
//! — the quantity that matters — are identical.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

/// Parameters for [`dblp_sim`].
#[derive(Clone, Copy, Debug)]
pub struct CoauthorConfig {
    /// Number of authors.
    pub authors: usize,
    /// Number of papers to generate.
    pub papers: usize,
    /// Number of research communities.
    pub communities: usize,
    /// Number of planted prolific authors.
    pub prolific: usize,
    /// Multiplier on a prolific author's paper participation rate.
    pub prolific_boost: f64,
    /// Probability a paper draws authors across communities.
    pub cross_community_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoauthorConfig {
    fn default() -> Self {
        Self {
            authors: 20_000,
            papers: 40_000,
            communities: 200,
            prolific: 12,
            prolific_boost: 60.0,
            cross_community_prob: 0.15,
            seed: 0xDB1F,
        }
    }
}

/// The generated co-authorship network plus per-author metadata.
#[derive(Clone, Debug)]
pub struct CoauthorDataset {
    /// Weighted undirected-as-bidirected co-authorship graph; edge weight =
    /// number of co-authored papers.
    pub graph: DiGraph,
    /// Papers written by each author (`w_j` in the paper's notation).
    pub publications: Vec<u32>,
    /// Ids of the planted prolific authors.
    pub prolific_authors: Vec<u32>,
}

impl CoauthorDataset {
    /// Number of distinct co-authors of `author` (the graph degree).
    pub fn coauthor_count(&self, author: u32) -> usize {
        self.graph.out_degree(author)
    }
}

/// Generates the co-authorship network.
pub fn dblp_sim(config: &CoauthorConfig) -> CoauthorDataset {
    assert!(config.authors >= 10, "dblp_sim: need at least 10 authors");
    assert!(config.communities >= 1 && config.communities <= config.authors);
    assert!(config.prolific <= config.authors);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.authors;

    // Community assignment: contiguous blocks (ids are arbitrary anyway).
    let community_of = |author: usize| author * config.communities / n;
    let community_bounds = |c: usize| {
        let lo = (c * n).div_ceil(config.communities);
        let hi = ((c + 1) * n).div_ceil(config.communities);
        (lo, hi.max(lo + 1).min(n))
    };

    // Prolific authors: spread across communities, one per stride.
    let prolific_authors: Vec<u32> =
        (0..config.prolific).map(|i| (i * n / config.prolific.max(1)) as u32).collect();
    let is_prolific: Vec<bool> = {
        let mut v = vec![false; n];
        for &p in &prolific_authors {
            v[p as usize] = true;
        }
        v
    };

    let mut publications = vec![0u32; n];
    let mut builder = GraphBuilder::new(n);

    for _ in 0..config.papers {
        let size = rng.gen_range(2..=4usize);
        let mut team: Vec<u32> = Vec::with_capacity(size);

        // Anchor author: prolific with probability proportional to the boost.
        let prolific_mass = config.prolific as f64 * config.prolific_boost;
        let anchor = if rng.gen_bool(prolific_mass / (prolific_mass + n as f64)) {
            prolific_authors[rng.gen_range(0..prolific_authors.len())]
        } else {
            rng.gen_range(0..n) as u32
        };
        team.push(anchor);

        // Remaining authors: same community unless a cross-community paper;
        // prolific authors collaborate everywhere.
        let cross = rng.gen_bool(config.cross_community_prob) || is_prolific[anchor as usize];
        let (lo, hi) = community_bounds(community_of(anchor as usize));
        let mut guard = 0;
        while team.len() < size && guard < 100 {
            guard += 1;
            let candidate =
                if cross { rng.gen_range(0..n) as u32 } else { rng.gen_range(lo..hi) as u32 };
            if !team.contains(&candidate) {
                team.push(candidate);
            }
        }

        for &a in &team {
            publications[a as usize] += 1;
        }
        for i in 0..team.len() {
            for j in 0..team.len() {
                if i != j {
                    builder.add_weighted_edge(team[i], team[j], 1.0).expect("author ids in range");
                }
            }
        }
    }

    // Authors with no papers become isolated; the self-loop policy keeps the
    // graph stochastic (they simply hold their own ink).
    let graph = builder.build(DanglingPolicy::SelfLoop).expect("non-empty graph");
    CoauthorDataset { graph, publications, prolific_authors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CoauthorDataset {
        dblp_sim(&CoauthorConfig {
            authors: 800,
            papers: 2_000,
            communities: 20,
            prolific: 4,
            ..Default::default()
        })
    }

    #[test]
    fn weights_count_coauthored_papers() {
        let d = small();
        assert!(d.graph.is_weighted());
        // Every weight is a positive integer (paper count).
        for (_, _, w) in d.graph.edges() {
            assert!(w >= 1.0 && w.fract() == 0.0, "weight {w}");
        }
    }

    #[test]
    fn edges_are_symmetric_in_weight() {
        let d = small();
        for (f, t, w) in d.graph.edges() {
            if f == t {
                continue; // self-loop repair for paperless authors
            }
            let back = d
                .graph
                .out_neighbors(t)
                .iter()
                .position(|&x| x == f)
                .map(|i| d.graph.out_weights(t).unwrap()[i]);
            assert_eq!(back, Some(w), "asymmetric edge {f}->{t}");
        }
    }

    #[test]
    fn prolific_authors_dominate_publication_counts() {
        let d = small();
        let avg: f64 =
            d.publications.iter().map(|&p| p as f64).sum::<f64>() / d.publications.len() as f64;
        for &p in &d.prolific_authors {
            assert!(
                d.publications[p as usize] as f64 > 5.0 * avg,
                "prolific {p}: {} vs avg {avg}",
                d.publications[p as usize]
            );
        }
    }

    #[test]
    fn prolific_authors_have_many_coauthors() {
        let d = small();
        let avg: f64 = (0..800u32).map(|u| d.coauthor_count(u) as f64).sum::<f64>() / 800.0;
        for &p in &d.prolific_authors {
            assert!(d.coauthor_count(p) as f64 > 3.0 * avg);
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.publications, b.publications);
    }
}
