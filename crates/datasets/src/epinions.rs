//! Epinions analogue: a who-trusts-whom network.
//!
//! Epinions (75,879 nodes / 508,837 edges) is a social trust graph: heavier
//! reciprocity than a web crawl and a denser edge/node ratio (~6.7). We scale
//! to 25,000 nodes (~1/3) with preferential attachment plus 35% edge
//! reciprocation, which lands near the target ratio and reproduces the
//! mutual-trust clusters that make social graphs behave differently from
//! crawls in Figures 5–6.

use rtk_graph::gen::{scale_free, ScaleFreeConfig};
use rtk_graph::DiGraph;

/// Size/seed parameters for the trust-network analogue.
#[derive(Clone, Copy, Debug)]
pub struct EpinionsConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Out-edges attached per arriving node.
    pub out_degree: usize,
    /// Probability an edge is reciprocated.
    pub reciprocation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EpinionsConfig {
    fn default() -> Self {
        Self { nodes: 25_000, out_degree: 5, reciprocation: 0.35, seed: 0xE919 }
    }
}

impl EpinionsConfig {
    /// Builds the graph.
    pub fn build(&self) -> DiGraph {
        scale_free(&ScaleFreeConfig {
            nodes: self.nodes,
            out_degree: self.out_degree,
            reciprocation: self.reciprocation,
            seed: self.seed,
        })
        .expect("epinions config parameters are valid")
    }
}

/// The default Epinions analogue: 25,000 nodes, ~170k edges.
pub fn epinions_sim() -> DiGraph {
    EpinionsConfig::default().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_hits_size_targets() {
        let g = EpinionsConfig { nodes: 5_000, ..Default::default() }.build();
        assert_eq!(g.node_count(), 5_000);
        // out_degree 5 + 35% reciprocation ⇒ roughly 6.7 edges/node.
        let ratio = g.edge_count() as f64 / g.node_count() as f64;
        assert!((5.0..8.5).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn reciprocity_is_substantial() {
        let g = EpinionsConfig { nodes: 3_000, ..Default::default() }.build();
        let mutual = g.edges().filter(|&(f, t, _)| g.has_edge(t, f)).count();
        let frac = mutual as f64 / g.edge_count() as f64;
        assert!(frac > 0.3, "mutual fraction {frac}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            EpinionsConfig { nodes: 1_000, ..Default::default() }.build(),
            EpinionsConfig { nodes: 1_000, ..Default::default() }.build()
        );
    }
}
