//! Dataset descriptors tying graphs to the paper's experiment parameters.
//!
//! Table 2 evaluates four hub-budget values `B` per graph; the bold column is
//! the configuration reused by every query experiment (Figures 5–7, 9). The
//! `B` values here are the paper's, scaled by each analogue's node-count
//! ratio (see `DESIGN.md` §4) and rounded to friendly numbers.

use rtk_graph::DiGraph;

/// One evaluation dataset and its experiment parameters.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short name used in harness output ("web-cs-sim", …).
    pub name: &'static str,
    /// The paper dataset this stands in for.
    pub paper_name: &'static str,
    /// Hub budgets `B` swept by Table 2 (scaled from the paper's).
    pub b_values: [usize; 4],
    /// The `B` used by the query experiments (the paper's bold row).
    pub default_b: usize,
    /// Rounding threshold `ω` (paper: 1e-6, 5e-6 for the largest graph).
    pub rounding_threshold: f64,
    /// Builder for the graph.
    pub build: fn() -> DiGraph,
}

impl DatasetSpec {
    /// Builds the dataset's graph.
    pub fn graph(&self) -> DiGraph {
        (self.build)()
    }
}

/// The four unlabeled efficiency datasets of §5.1, in paper order.
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "web-cs-sim",
            paper_name: "Web-stanford-cs",
            // Paper swept 50/100/200/300 on 9,914 nodes; ours is 10,000.
            b_values: [50, 100, 200, 300],
            default_b: 50,
            rounding_threshold: 1e-6,
            build: crate::web::web_cs_sim,
        },
        DatasetSpec {
            name: "epinions-sim",
            paper_name: "Epinions",
            // Paper: 1000/1500/2000/3000 on 75,879 nodes; ours 25,000 (×⅓).
            b_values: [330, 500, 660, 1000],
            default_b: 660,
            rounding_threshold: 1e-6,
            build: crate::epinions::epinions_sim,
        },
        DatasetSpec {
            name: "web-std-sim",
            paper_name: "Web-stanford",
            // Paper: 1000/1500/2000/3000 on 281,903 nodes; ours 50,000 (~1/5.6).
            b_values: [180, 270, 360, 540],
            default_b: 360,
            rounding_threshold: 1e-6,
            build: crate::web::web_std_sim,
        },
        DatasetSpec {
            name: "web-google-sim",
            paper_name: "Web-google",
            // Paper: 5000/10000/20000/50000 on 875,713 nodes; ours 100,000
            // (~1/8.75).
            b_values: [570, 1140, 2290, 5710],
            default_b: 1140,
            rounding_threshold: 5e-6,
            build: crate::web::web_google_sim,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_four_datasets_in_paper_order() {
        let specs = paper_datasets();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].paper_name, "Web-stanford-cs");
        assert_eq!(specs[3].paper_name, "Web-google");
    }

    #[test]
    fn default_b_is_among_swept_values() {
        for spec in paper_datasets() {
            assert!(
                spec.b_values.contains(&spec.default_b),
                "{}: default_b {} not in {:?}",
                spec.name,
                spec.default_b,
                spec.b_values
            );
        }
    }

    #[test]
    fn smallest_dataset_builds() {
        let spec = &paper_datasets()[0];
        let g = spec.graph();
        assert_eq!(g.node_count(), 10_000);
    }
}
