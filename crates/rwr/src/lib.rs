//! Random-walk-with-restart proximity engines.
//!
//! Implements every proximity computation the paper builds on:
//!
//! * [`power`] — the forward power method solving
//!   `p_u = (1−α)·A·p_u + α·e_u` (Eq. 1/12), plus PageRank and personalized
//!   PageRank through the same operator (Eq. 3);
//! * [`pmpn`] — **Power Method for Proximity to Node** (Alg. 2): the paper's
//!   novel result that the *row* `p_{q,*}` of the proximity matrix is
//!   computable by iterating on `Aᵀ` with convergence rate `1−α` (Thm. 2);
//! * [`bca`] — the Bookmark Coloring Algorithm: Berkhin's single-node
//!   propagation, the threshold variant, and the paper's batched adaptation
//!   (Eqs. 8–9) with hub ink accumulation (Eq. 6) and resumable snapshots;
//! * [`monte_carlo`] — the MC End-Point and MC Complete-Path estimators the
//!   paper discusses as (non-lower-bounding) alternatives (§6.2);
//! * [`hubs`] — degree-based hub selection (§4.1.1) and Berkhin's greedy
//!   BCA-driven selection as an ablation baseline;
//! * [`exact`] — a dense Gaussian-elimination oracle for small graphs, used
//!   by tests to validate every iterative engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bca;
pub mod exact;
pub mod hubs;
pub mod monte_carlo;
pub mod params;
pub mod pmpn;
pub mod power;

pub use bca::{BcaEngine, BcaSnapshot, BcaStop, PropagationStrategy};
pub use hubs::HubSet;
pub use params::{BcaParams, RwrParams};
pub use pmpn::proximity_to;
pub use power::{pagerank, personalized_pagerank, proximity_from};
