//! Monte Carlo RWR estimators (paper §6.2, after Fogaras et al. and
//! Avrachenkov et al.).
//!
//! Both simulate restart-terminated walks from the source:
//!
//! * **MC End Point** estimates `p_u(v)` as the fraction of walks that *end*
//!   at `v` (a walk ends when the restart coin with probability `α` fires);
//! * **MC Complete Path** counts *every visit* to `v` and scales by `α`,
//!   using `E[visits to v] = p_u(v)/α` — strictly lower variance per walk.
//!
//! Walks are embarrassingly parallel, so both estimators fan out over the
//! persistent [`WorkerPool`]. Each walk draws from its own RNG seeded
//! `seed + walk_index`, which makes the estimate a pure function of
//! `(graph, source, params)` — independent of thread count, chunk size, and
//! scheduling order. Per-chunk visit tallies are integers, so the final merge
//! is an exact sum with no floating-point order sensitivity.
//!
//! The paper's index cannot be built on these (they are unbiased estimates,
//! not lower bounds — §6.1), but they serve as fast approximate baselines and
//! as statistical cross-checks in the test suite.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rtk_graph::TransitionMatrix;
use rtk_sparse::WorkerPool;

/// Parameters for the Monte Carlo estimators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct McParams {
    /// Restart probability `α`.
    pub alpha: f64,
    /// Number of simulated walks.
    pub walks: u32,
    /// Hard cap on a single walk's length (the geometric tail is unbounded;
    /// `1/α · 50` comfortably exceeds any mass that matters).
    pub max_steps: u32,
    /// RNG seed (estimates are deterministic given the seed).
    pub seed: u64,
}

impl Default for McParams {
    fn default() -> Self {
        Self { alpha: 0.15, walks: 10_000, max_steps: 2_000, seed: 0 }
    }
}

impl McParams {
    fn validate(&self) {
        assert!(self.alpha > 0.0 && self.alpha < 1.0, "McParams: alpha in (0,1)");
        assert!(self.walks > 0, "McParams: need at least one walk");
        assert!(self.max_steps > 0, "McParams: need at least one step");
    }
}

/// Walk indices per pool task. Small enough to load-balance uneven walk
/// lengths, large enough to amortise the per-task `vec![0; n]` tally.
const WALK_CHUNK: u32 = 2_048;

/// Samples one transition out of `node` according to the transition
/// probabilities (linear scan of the out-edges; fine for simulation use).
fn step(transition: &TransitionMatrix<'_>, node: u32, rng: &mut StdRng) -> u32 {
    let targets = transition.graph().out_neighbors(node);
    let probs = transition.out_probs(node);
    debug_assert!(!targets.is_empty(), "dangling node reached during walk");
    let mut roll: f64 = rng.gen();
    for (&t, &p) in targets.iter().zip(probs) {
        if roll < p {
            return t;
        }
        roll -= p;
    }
    // Floating-point slack: land on the last target.
    *targets.last().expect("non-empty out list")
}

/// Simulates one restart-terminated walk from `start` and returns the node
/// the restart coin fired on. The caller owns the RNG, so derived estimators
/// (e.g. the bidirectional residue-weighted one in `rtk-approx`) can impose
/// their own per-walk seeding discipline.
pub fn walk_endpoint(
    transition: &TransitionMatrix<'_>,
    start: u32,
    alpha: f64,
    max_steps: u32,
    rng: &mut StdRng,
) -> u32 {
    let mut at = start;
    for _ in 0..max_steps {
        if rng.gen_bool(alpha) {
            break;
        }
        at = step(transition, at, rng);
    }
    at
}

/// Runs `params.walks` independent walks on `pool`, tallying integer counts
/// per node. `complete` selects visit counting (Complete Path) over endpoint
/// counting (End Point). Walk `w` uses `StdRng::seed_from_u64(seed + w)`.
fn run_walks(
    pool: &WorkerPool,
    transition: &TransitionMatrix<'_>,
    u: u32,
    params: &McParams,
    complete: bool,
) -> Vec<u64> {
    let n = transition.node_count();
    let chunks: Vec<(u32, u32)> = (0..params.walks)
        .step_by(WALK_CHUNK as usize)
        .map(|lo| (lo, (lo + WALK_CHUNK).min(params.walks)))
        .collect();
    let mut partials: Vec<Vec<u64>> = vec![Vec::new(); chunks.len()];
    pool.scope(|s| {
        for (slot, &(lo, hi)) in partials.iter_mut().zip(&chunks) {
            s.spawn(move || {
                let mut counts = vec![0u64; n];
                for w in lo..hi {
                    let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(w as u64));
                    let mut at = u;
                    if complete {
                        counts[at as usize] += 1;
                    }
                    for _ in 0..params.max_steps {
                        if rng.gen_bool(params.alpha) {
                            break;
                        }
                        at = step(transition, at, &mut rng);
                        if complete {
                            counts[at as usize] += 1;
                        }
                    }
                    if !complete {
                        counts[at as usize] += 1;
                    }
                }
                *slot = counts;
            });
        }
    });
    let mut total = vec![0u64; n];
    for part in &partials {
        for (t, &c) in total.iter_mut().zip(part) {
            *t += c;
        }
    }
    total
}

/// MC End Point: `p̂_u(v)` = fraction of walks ending at `v`.
///
/// Runs on the shared global [`WorkerPool`]; see [`mc_end_point_on`] to pin
/// a specific pool (the estimate itself never depends on the pool's size).
pub fn mc_end_point(transition: &TransitionMatrix<'_>, u: u32, params: &McParams) -> Vec<f64> {
    mc_end_point_on(WorkerPool::global(), transition, u, params)
}

/// [`mc_end_point`] on an explicit pool.
pub fn mc_end_point_on(
    pool: &WorkerPool,
    transition: &TransitionMatrix<'_>,
    u: u32,
    params: &McParams,
) -> Vec<f64> {
    params.validate();
    let n = transition.node_count();
    assert!((u as usize) < n, "mc_end_point: node {u} out of range");
    let counts = run_walks(pool, transition, u, params, false);
    counts.iter().map(|&c| c as f64 / params.walks as f64).collect()
}

/// MC Complete Path: `p̂_u(v)` = `α ×` average visits to `v` per walk.
///
/// Runs on the shared global [`WorkerPool`]; see [`mc_complete_path_on`] to
/// pin a specific pool (the estimate itself never depends on the pool's
/// size).
pub fn mc_complete_path(transition: &TransitionMatrix<'_>, u: u32, params: &McParams) -> Vec<f64> {
    mc_complete_path_on(WorkerPool::global(), transition, u, params)
}

/// [`mc_complete_path`] on an explicit pool.
pub fn mc_complete_path_on(
    pool: &WorkerPool,
    transition: &TransitionMatrix<'_>,
    u: u32,
    params: &McParams,
) -> Vec<f64> {
    params.validate();
    let n = transition.node_count();
    assert!((u as usize) < n, "mc_complete_path: node {u} out of range");
    let visits = run_walks(pool, transition, u, params, true);
    let scale = params.alpha / params.walks as f64;
    visits.iter().map(|&c| c as f64 * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RwrParams;
    use crate::power::proximity_from;
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let p = McParams { walks: 500, ..Default::default() };
        assert_eq!(mc_end_point(&t, 0, &p), mc_end_point(&t, 0, &p));
        assert_eq!(mc_complete_path(&t, 0, &p), mc_complete_path(&t, 0, &p));
    }

    #[test]
    fn estimates_are_independent_of_thread_count() {
        // Per-walk seeding means the estimate is a pure function of the
        // parameters: pools of size 0 (caller-only), 1, 2, and 4 must all
        // produce bit-identical vectors, including when the walk count does
        // not divide evenly into chunks.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let p = McParams { walks: 3 * WALK_CHUNK + 37, seed: 11, ..Default::default() };
        let pools: Vec<WorkerPool> =
            [0usize, 1, 2, 4].iter().map(|&w| WorkerPool::new(w)).collect();
        let ep: Vec<Vec<f64>> = pools.iter().map(|pl| mc_end_point_on(pl, &t, 0, &p)).collect();
        let cp: Vec<Vec<f64>> = pools.iter().map(|pl| mc_complete_path_on(pl, &t, 0, &p)).collect();
        for i in 1..pools.len() {
            assert_eq!(ep[0], ep[i], "end-point differs on pool {i}");
            assert_eq!(cp[0], cp[i], "complete-path differs on pool {i}");
        }
    }

    #[test]
    fn end_point_estimates_are_distributions() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let est = mc_end_point(&t, 2, &McParams { walks: 1_000, ..Default::default() });
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(est.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn both_estimators_approach_ground_truth() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let (truth, _) = proximity_from(&t, 0, &RwrParams::default());
        let p = McParams { walks: 200_000, seed: 17, ..Default::default() };
        let ep = mc_end_point(&t, 0, &p);
        let cp = mc_complete_path(&t, 0, &p);
        for v in 0..6 {
            assert!((ep[v] - truth[v]).abs() < 0.01, "end-point v={v}: {} vs {}", ep[v], truth[v]);
            assert!((cp[v] - truth[v]).abs() < 0.01, "complete v={v}: {} vs {}", cp[v], truth[v]);
        }
    }

    #[test]
    fn complete_path_has_lower_error_than_end_point() {
        // With matched walk budgets, the visit-counting estimator should land
        // closer to the truth in aggregate (its per-walk information is
        // higher). Aggregate L1 over a few seeds to avoid flakiness; spread
        // the seeds far apart so the per-walk streams don't overlap.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let (truth, _) = proximity_from(&t, 3, &RwrParams::default());
        let mut err_ep = 0.0;
        let mut err_cp = 0.0;
        for seed in 0..5u64 {
            let p = McParams { walks: 5_000, seed: seed * 1_000_003, ..Default::default() };
            let ep = mc_end_point(&t, 3, &p);
            let cp = mc_complete_path(&t, 3, &p);
            err_ep += rtk_sparse::dense::l1_distance(&ep, &truth);
            err_cp += rtk_sparse::dense::l1_distance(&cp, &truth);
        }
        assert!(err_cp < err_ep, "complete-path {err_cp} vs end-point {err_ep}");
    }

    #[test]
    fn respects_weighted_transitions() {
        // 0 -> 1 with weight 9, 0 -> 2 with weight 1: walks overwhelmingly
        // visit 1.
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 9.0).unwrap();
        b.add_weighted_edge(0, 2, 1.0).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(2, 0).unwrap();
        let g = b.build(DanglingPolicy::Error).unwrap();
        let t = TransitionMatrix::new(&g);
        let est = mc_complete_path(&t, 0, &McParams { walks: 20_000, ..Default::default() });
        assert!(est[1] > 4.0 * est[2], "p(1)={} p(2)={}", est[1], est[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_source() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        mc_end_point(&t, 9, &McParams::default());
    }
}
