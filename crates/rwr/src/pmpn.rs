//! PMPN — Power Method for Proximity to Node (Alg. 2, Thm. 2).
//!
//! Computes the *row* `p_{q,*}` of the proximity matrix: the exact RWR
//! proximity from **every** node to a fixed query node `q`. The paper proves
//! (Thm. 2) that iterating
//!
//! ```text
//! x ← (1−α)·Aᵀ·x + α·e_q
//! ```
//!
//! converges from any start to the unique solution at rate `1−α`, even though
//! the iterates are not probability distributions (`‖x‖₁` may grow between
//! steps — the classical Perron–Frobenius argument does not apply, which is
//! why the theorem is a contribution). The cost matches computing a single
//! forward column: `O(m·log(ε/α)/log(1−α))`.

use crate::params::RwrParams;
use crate::power::SolveReport;
use rtk_graph::TransitionMatrix;
use rtk_sparse::dense;

/// Computes exact proximities *to* node `q` from every node: the vector
/// `x` with `x[u] = p_u(q) = p_{q,u}`.
///
/// This is the first step of every online reverse top-k query (Alg. 4
/// line 1) and independently useful (e.g. exact PageRank contributions to
/// a suspected spam page, per the paper's SpamRank discussion).
pub fn proximity_to(
    transition: &TransitionMatrix<'_>,
    q: u32,
    params: &RwrParams,
) -> (Vec<f64>, SolveReport) {
    proximity_to_from_start(transition, q, params, None)
}

/// [`proximity_to`] with an explicit starting iterate (Thm. 2 guarantees
/// convergence from *any* `x⁰`; a warm start from a previous query's result
/// can shave iterations when graphs change slowly).
///
/// Each `Aᵀ·x` product runs over `params.threads` workers (`0` = all cores);
/// the result is bitwise identical for any thread count.
pub fn proximity_to_from_start(
    transition: &TransitionMatrix<'_>,
    q: u32,
    params: &RwrParams,
    start: Option<&[f64]>,
) -> (Vec<f64>, SolveReport) {
    params.validate();
    let n = transition.node_count();
    assert!((q as usize) < n, "proximity_to: node {q} out of range");

    let mut x = match start {
        Some(s) => {
            assert_eq!(s.len(), n, "proximity_to: start vector length mismatch");
            s.to_vec()
        }
        None => {
            let mut x = vec![0.0; n];
            x[q as usize] = 1.0;
            x
        }
    };
    let mut y = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < params.max_iterations {
        transition.apply_transpose_threaded(params.alpha, &x, q, &mut y, params.threads);
        iterations += 1;
        delta = dense::l1_distance(&x, &y);
        std::mem::swap(&mut x, &mut y);
        if delta < params.epsilon {
            break;
        }
    }
    let converged = delta < params.epsilon;
    (x, SolveReport { iterations, final_delta: delta, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::proximity_from;
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    /// The defining property: PMPN's row must equal the transposed columns.
    #[test]
    fn row_matches_transposed_columns_on_toy() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        for q in 0..6u32 {
            let (row, report) = proximity_to(&t, q, &params);
            assert!(report.converged);
            for u in 0..6u32 {
                let (col, _) = proximity_from(&t, u, &params);
                assert!(
                    (row[u as usize] - col[q as usize]).abs() < 1e-8,
                    "p_{u}({q}): row {} vs column {}",
                    row[u as usize],
                    col[q as usize]
                );
            }
        }
    }

    #[test]
    fn row_matches_paper_example() {
        // §4.2.3: p_{q,*} for q = node 1 is [0.32 0.24 0.24 0.19 0.20 0.18].
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let (row, _) = proximity_to(&t, 0, &RwrParams::default());
        let expected = [0.32, 0.24, 0.24, 0.19, 0.20, 0.18];
        for u in 0..6 {
            assert!((row[u] - expected[u]).abs() < 5e-3, "u={u}: {} vs {}", row[u], expected[u]);
        }
    }

    #[test]
    fn converges_from_arbitrary_start() {
        // Theorem 2(a): any x⁰ converges to the same fixpoint.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let (from_unit, _) = proximity_to(&t, 2, &params);
        let weird_start = vec![7.0, -3.0, 0.0, 100.0, 0.5, 2.0];
        let (from_weird, report) = proximity_to_from_start(&t, 2, &params, Some(&weird_start));
        assert!(report.converged);
        for u in 0..6 {
            assert!((from_unit[u] - from_weird[u]).abs() < 1e-7);
        }
    }

    #[test]
    fn iterations_respect_theorem_2c_bound() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let (_, report) = proximity_to(&t, 1, &params);
        assert!(
            report.iterations <= params.iteration_bound() + 1,
            "{} vs bound {}",
            report.iterations,
            params.iteration_bound()
        );
    }

    #[test]
    fn intermediate_norms_may_exceed_one_yet_converge() {
        // The non-obvious part of Thm. 2: {x_i} is NOT non-expansive. On a
        // high-in-degree target the first iterate's norm exceeds 1.
        let mut b = GraphBuilder::new(5);
        for u in 1..5u32 {
            b.add_edge(u, 0).unwrap();
        }
        b.add_edge(0, 1).unwrap();
        let g = b.build(DanglingPolicy::Error).unwrap();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        // One manual step from e_0: x1 = (1-α) Aᵀ e_0 + α e_0.
        let mut x0 = vec![0.0; 5];
        x0[0] = 1.0;
        let mut x1 = vec![0.0; 5];
        t.apply_transpose(params.alpha, &x0, 0, &mut x1);
        assert!(rtk_sparse::dense::l1_norm(&x1) > 1.0);
        let (_, report) = proximity_to(&t, 0, &params);
        assert!(report.converged);
    }

    #[test]
    fn singleton_self_loop_graph() {
        let g = GraphBuilder::from_edges(1, &[(0, 0)], DanglingPolicy::Error).unwrap();
        let t = TransitionMatrix::new(&g);
        let (row, _) = proximity_to(&t, 0, &RwrParams::default());
        assert!((row[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_query() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        proximity_to(&t, 6, &RwrParams::default());
    }
}
