//! Hub selection (paper §4.1.1).
//!
//! Hubs are nodes whose exact proximity vectors are precomputed so that ink
//! arriving at them during BCA can be parked (`s` vector) and distributed in
//! one batch at materialization time. The paper selects the `B` highest
//! in-degree and `B` highest out-degree nodes — cheap and graph-size
//! independent — and argues this beats Berkhin's greedy BCA-driven scheme at
//! scale. Both are implemented; the greedy scheme feeds the ablation bench.

use crate::bca::{BcaEngine, BcaStop, PropagationStrategy};
use crate::params::BcaParams;
use rtk_graph::degree::degree_hub_union;
use rtk_graph::{DiGraph, TransitionMatrix};

/// An immutable set of hub nodes with `O(1)` membership tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HubSet {
    /// Sorted hub ids.
    ids: Vec<u32>,
    /// `positions[u]` = index of `u` within `ids`, or `u32::MAX`.
    positions: Vec<u32>,
}

impl HubSet {
    /// An empty hub set over `node_count` nodes (plain BCA).
    pub fn empty(node_count: usize) -> Self {
        Self { ids: Vec::new(), positions: vec![u32::MAX; node_count] }
    }

    /// Builds a hub set from explicit ids.
    ///
    /// # Panics
    /// Panics if any id is out of range or duplicated.
    pub fn from_ids(node_count: usize, mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        let mut positions = vec![u32::MAX; node_count];
        for (pos, &u) in ids.iter().enumerate() {
            assert!((u as usize) < node_count, "HubSet: node {u} out of range");
            assert!(positions[u as usize] == u32::MAX, "HubSet: duplicate hub {u}");
            positions[u as usize] = pos as u32;
        }
        Self { ids, positions }
    }

    /// The paper's selection: union of the `b` largest in-degree and `b`
    /// largest out-degree nodes.
    pub fn degree_based(graph: &DiGraph, b: usize) -> Self {
        Self::from_ids(graph.node_count(), degree_hub_union(graph, b))
    }

    /// Berkhin's greedy scheme: repeatedly run a partial BCA from a probe
    /// node and promote the non-hub node holding the most retained ink.
    /// `O(count · BCA)` — the cost the paper's degree heuristic avoids.
    pub fn greedy_bca(
        transition: &TransitionMatrix<'_>,
        count: usize,
        params: &BcaParams,
        seed: u64,
    ) -> Self {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = transition.node_count();
        let count = count.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hubs = Self::empty(n);
        let stop = BcaStop {
            residue_norm: params.residue_threshold,
            max_iterations: params.max_iterations,
        };
        while hubs.len() < count {
            let probe = rng.gen_range(0..n) as u32;
            let mut engine =
                BcaEngine::new(hubs.clone(), *params, PropagationStrategy::BatchThreshold);
            let snap = engine.run_from(transition, probe, &stop);
            // Largest retained ink among non-hubs (probe included).
            let candidate = snap
                .retained
                .iter()
                .filter(|&(v, _)| !hubs.contains(v))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)));
            let chosen = match candidate {
                Some((v, _)) => v,
                // Degenerate probe (e.g. already-hub sink): fall back to the
                // first non-hub node to guarantee progress.
                None => match (0..n as u32).find(|&v| !hubs.contains(v)) {
                    Some(v) => v,
                    None => break,
                },
            };
            let mut ids = hubs.ids.clone();
            ids.push(chosen);
            hubs = Self::from_ids(n, ids);
        }
        hubs
    }

    /// Number of hubs.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no hubs are selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted hub ids.
    #[inline]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// `O(1)` membership test.
    #[inline]
    pub fn contains(&self, node: u32) -> bool {
        self.positions[node as usize] != u32::MAX
    }

    /// Position of `node` within [`Self::ids`], if it is a hub.
    #[inline]
    pub fn position(&self, node: u32) -> Option<usize> {
        let p = self.positions[node as usize];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::{DanglingPolicy, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn degree_based_matches_paper_example() {
        // Paper Figure 2: with B = 1 the hubs are nodes 1 and 2 (1-based),
        // i.e. 0 and 1 here: node 1 has max in-degree (5), node 0 max
        // out-degree (3).
        let hubs = HubSet::degree_based(&toy(), 1);
        assert_eq!(hubs.ids(), &[0, 1]);
    }

    #[test]
    fn membership_and_positions() {
        let hubs = HubSet::from_ids(6, vec![4, 1]);
        assert!(hubs.contains(1) && hubs.contains(4));
        assert!(!hubs.contains(0));
        assert_eq!(hubs.position(1), Some(0));
        assert_eq!(hubs.position(4), Some(1));
        assert_eq!(hubs.position(2), None);
        assert_eq!(hubs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicates() {
        HubSet::from_ids(6, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        HubSet::from_ids(3, vec![5]);
    }

    #[test]
    fn greedy_selects_requested_count_deterministically() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = BcaParams::default();
        let a = HubSet::greedy_bca(&t, 3, &params, 42);
        let b = HubSet::greedy_bca(&t, 3, &params, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // The high-in-degree node 1 attracts ink from everywhere; greedy
        // selection should discover it.
        assert!(a.contains(1), "greedy hubs: {:?}", a.ids());
    }

    #[test]
    fn greedy_clamps_to_node_count() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let hubs = HubSet::greedy_bca(&t, 100, &BcaParams::default(), 7);
        assert_eq!(hubs.len(), 6);
    }
}
