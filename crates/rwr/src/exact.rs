//! Dense direct solver — the test oracle.
//!
//! Solves `(I − (1−α)·A)·p = α·e_u` by Gaussian elimination with partial
//! pivoting. `O(n³)`: intended for graphs of at most a few thousand nodes,
//! where it provides machine-precision ground truth for validating every
//! iterative engine (and for the IBF baseline on the toy/figure-8 graphs).

use rtk_graph::TransitionMatrix;

/// Hard cap on the dense solver's size: beyond this the `O(n³)` cost and the
/// `O(n²)` memory stop being a sensible oracle.
pub const DENSE_ORACLE_MAX_NODES: usize = 4_096;

/// Computes the full proximity matrix `P = α·(I − (1−α)·A)⁻¹` column-major:
/// `result[u]` is the proximity vector `p_u`.
///
/// # Panics
/// Panics when the graph exceeds [`DENSE_ORACLE_MAX_NODES`] nodes.
pub fn proximity_matrix_dense(transition: &TransitionMatrix<'_>, alpha: f64) -> Vec<Vec<f64>> {
    let n = transition.node_count();
    assert!(
        n <= DENSE_ORACLE_MAX_NODES,
        "dense oracle limited to {DENSE_ORACLE_MAX_NODES} nodes (got {n})"
    );
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0,1)");

    // M = I - (1-α) A, built densely.
    let mut m = vec![vec![0.0; n]; n];
    for j in 0..n as u32 {
        let col = transition.column_dense(j);
        for i in 0..n {
            m[i][j as usize] = -(1.0 - alpha) * col[i];
        }
    }
    for (i, row) in m.iter_mut().enumerate() {
        row[i] += 1.0;
    }

    // LU factorization with partial pivoting (in place), then n solves.
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        let pivot = (k..n)
            .max_by(|&a, &b| m[a][k].abs().partial_cmp(&m[b][k].abs()).unwrap())
            .unwrap();
        m.swap(k, pivot);
        perm.swap(k, pivot);
        let pv = m[k][k];
        assert!(pv.abs() > 1e-14, "singular system (graph not stochastic?)");
        for i in k + 1..n {
            let f = m[i][k] / pv;
            m[i][k] = f; // store the multiplier in the lower triangle
            if f != 0.0 {
                let (upper, lower) = m.split_at_mut(i);
                let mk = &upper[k];
                let mi = &mut lower[0];
                for j in k + 1..n {
                    mi[j] -= f * mk[j];
                }
            }
        }
    }

    let mut columns = Vec::with_capacity(n);
    for u in 0..n {
        // Right-hand side α·e_u, permuted.
        let mut x = vec![0.0; n];
        for (i, &pi) in perm.iter().enumerate() {
            x[i] = if pi == u { alpha } else { 0.0 };
        }
        // Forward substitution (unit lower triangle).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= m[i][j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= m[i][j] * x[j];
            }
            x[i] = acc / m[i][i];
        }
        columns.push(x);
    }
    columns
}

/// Computes a single exact proximity vector `p_u` via the dense solver.
pub fn proximity_from_dense(transition: &TransitionMatrix<'_>, u: u32, alpha: f64) -> Vec<f64> {
    let cols = proximity_matrix_dense(transition, alpha);
    cols[u as usize].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RwrParams;
    use crate::power::proximity_from;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rtk_graph::{DanglingPolicy, GraphBuilder};

    #[test]
    fn oracle_matches_power_method_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let n = rng.gen_range(2..25);
            let mut b = GraphBuilder::new(n);
            for _ in 0..rng.gen_range(n..4 * n) {
                let f = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0..n) as u32;
                b.add_edge(f, t).unwrap();
            }
            let g = b.build(DanglingPolicy::SelfLoop).unwrap();
            let t = rtk_graph::TransitionMatrix::new(&g);
            let params = RwrParams::default();
            let exact = proximity_matrix_dense(&t, params.alpha);
            for u in 0..n as u32 {
                let (pm, _) = proximity_from(&t, u, &params);
                for v in 0..n {
                    assert!(
                        (pm[v] - exact[u as usize][v]).abs() < 1e-8,
                        "trial {trial} p_{u}({v}): {} vs {}",
                        pm[v],
                        exact[u as usize][v]
                    );
                }
            }
        }
    }

    #[test]
    fn oracle_columns_are_distributions() {
        let g =
            GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)], DanglingPolicy::Error).unwrap();
        let t = rtk_graph::TransitionMatrix::new(&g);
        for col in proximity_matrix_dense(&t, 0.15) {
            assert!((col.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(col.iter().all(|&v| v >= -1e-15));
        }
    }

    #[test]
    fn directed_cycle_has_closed_form() {
        // On a 3-cycle with restart at u, proximity decays geometrically along
        // the cycle: p_u(u+j) ∝ (1-α)^j, normalized over one loop.
        let g =
            GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)], DanglingPolicy::Error).unwrap();
        let t = rtk_graph::TransitionMatrix::new(&g);
        let alpha = 0.15;
        let p = proximity_from_dense(&t, 0, alpha);
        let d = 1.0 - alpha;
        let loop_gain = 1.0 - d * d * d;
        for (j, &got) in p.iter().enumerate() {
            // Closed form: p_0(j) = α·d^j / (1 − d³).
            let expected = alpha * d.powi(j as i32) / loop_gain;
            assert!((got - expected).abs() < 1e-12, "j={j}: {got} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "dense oracle limited")]
    fn refuses_huge_graphs() {
        let g = rtk_graph::gen::erdos_renyi(&rtk_graph::gen::ErdosRenyiConfig {
            nodes: DENSE_ORACLE_MAX_NODES + 1,
            edges: DENSE_ORACLE_MAX_NODES + 1,
            seed: 0,
        })
        .unwrap();
        let t = rtk_graph::TransitionMatrix::new(&g);
        proximity_matrix_dense(&t, 0.15);
    }
}
