//! Solver parameter sets with the paper's defaults.

/// Parameters for the power-method solvers (forward and PMPN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RwrParams {
    /// Restart probability `α` (paper default 0.15).
    pub alpha: f64,
    /// L1 convergence tolerance `ε` between successive iterates
    /// (paper default 1e-10, §5.2).
    pub epsilon: f64,
    /// Hard iteration cap (safety net; Thm. 2(c) bounds the needed count by
    /// `log(ε/α)/log(1−α)` ≈ 130 for the defaults).
    pub max_iterations: u32,
    /// Worker threads for each sparse matrix–vector product (`0` = all
    /// cores). Results are bitwise identical for any value; default 1 so
    /// embedded solves (e.g. per-hub solves inside an already-parallel index
    /// build) do not oversubscribe.
    pub threads: usize,
}

impl Default for RwrParams {
    fn default() -> Self {
        Self { alpha: 0.15, epsilon: 1e-10, max_iterations: 1_000, threads: 1 }
    }
}

impl RwrParams {
    /// Creates parameters with a custom restart probability.
    pub fn with_alpha(alpha: f64) -> Self {
        Self { alpha, ..Self::default() }
    }

    /// Returns a copy with the SpMV thread count set (`0` = all cores).
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// Panics unless `0 < α < 1`, `ε > 0` and at least one iteration is
    /// allowed. Called by every solver entry point.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "RwrParams: alpha must lie in (0,1), got {}",
            self.alpha
        );
        assert!(self.epsilon > 0.0, "RwrParams: epsilon must be positive");
        assert!(self.max_iterations >= 1, "RwrParams: max_iterations must be ≥ 1");
    }

    /// Theorem 2(c): iterations needed for `‖x_{i+1} − x_i‖₁ < ε`.
    pub fn iteration_bound(&self) -> u32 {
        ((self.epsilon / self.alpha).ln() / (1.0 - self.alpha).ln()).ceil().max(1.0) as u32
    }
}

/// Parameters for the Bookmark Coloring Algorithm (index construction and
/// query-time refinement).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BcaParams {
    /// Restart probability `α`.
    pub alpha: f64,
    /// Propagation threshold `η`: only nodes with residue `≥ η` join a batch
    /// iteration's frontier `L_t` (paper default 1e-4).
    pub propagation_threshold: f64,
    /// Residue threshold `δ`: BCA stops once `‖r‖₁ ≤ δ` (paper default 0.1
    /// for index construction; use a tiny value for near-exact vectors).
    pub residue_threshold: f64,
    /// Hard iteration cap.
    pub max_iterations: u32,
}

impl Default for BcaParams {
    fn default() -> Self {
        Self {
            alpha: 0.15,
            propagation_threshold: 1e-4,
            residue_threshold: 0.1,
            max_iterations: 10_000,
        }
    }
}

impl BcaParams {
    /// Parameters that drive BCA to (numerically) full convergence — used
    /// for computing hub vectors without the power method.
    pub fn exhaustive(alpha: f64) -> Self {
        Self {
            alpha,
            propagation_threshold: 1e-12,
            residue_threshold: 1e-9,
            max_iterations: 1_000_000,
        }
    }

    /// Panics on out-of-range parameters; see [`RwrParams::validate`].
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "BcaParams: alpha must lie in (0,1), got {}",
            self.alpha
        );
        assert!(
            self.propagation_threshold > 0.0,
            "BcaParams: propagation_threshold must be positive"
        );
        assert!(self.residue_threshold >= 0.0, "BcaParams: residue_threshold must be non-negative");
        assert!(self.max_iterations >= 1, "BcaParams: max_iterations must be ≥ 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = RwrParams::default();
        assert_eq!(p.alpha, 0.15);
        assert_eq!(p.epsilon, 1e-10);
        let b = BcaParams::default();
        assert_eq!(b.propagation_threshold, 1e-4);
        assert_eq!(b.residue_threshold, 0.1);
    }

    #[test]
    fn iteration_bound_matches_theorem() {
        let p = RwrParams::default();
        // log(1e-10/0.15)/log(0.85) ≈ 129.9
        let bound = p.iteration_bound();
        assert!((129..=131).contains(&bound), "bound {bound}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        RwrParams { alpha: 1.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_zero() {
        BcaParams { alpha: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        RwrParams { epsilon: 0.0, ..Default::default() }.validate();
    }
}
