//! The Bookmark Coloring Algorithm (paper §2.2 and §4.1.2).
//!
//! BCA models RWR as ink propagation: a unit of ink is injected at the source
//! `u`; whenever a node's residue is propagated, an `α` fraction is *retained*
//! there and the remaining `1−α` flows along its out-edges in transition
//! proportion. Ink that reaches a **hub** is parked in the hub-ink vector `s`
//! instead of propagating (Eq. 6) — its effect is recovered later from the
//! precomputed hub proximity vectors (`p^t_u = w^t_u + P_H·s^t_u`, Eq. 7).
//!
//! Three propagation strategies are provided:
//!
//! * [`PropagationStrategy::BatchThreshold`] — the paper's adaptation
//!   (Eqs. 8–9): every node with residue `≥ η` propagates in one iteration,
//!   collected *before* any pushes so an iteration exactly matches the
//!   equations;
//! * [`PropagationStrategy::SingleMaxResidue`] — Berkhin's original rule;
//! * [`PropagationStrategy::SingleAboveThreshold`] — the FOCS'06 variant
//!   (any single node above `η`).
//!
//! Every strategy maintains the conservation invariant
//! `‖w‖₁ + ‖s‖₁ + ‖r‖₁ = 1` and the monotonicity of retained ink
//! (Prop. 1), which is what makes the index's values true lower bounds.
//!
//! The engine's state round-trips through compact [`BcaSnapshot`]s so a
//! partially-run computation can be stored in the offline index and *resumed*
//! during query refinement (§4.2.3).

use crate::hubs::HubSet;
use crate::params::BcaParams;
use rtk_graph::TransitionMatrix;
use rtk_sparse::{EpochScratch, SparseVector};

/// How nodes are chosen for propagation each iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropagationStrategy {
    /// Paper's batch rule: `L_t = {v ∉ H : r(v) ≥ η}` (Eqs. 8–9).
    BatchThreshold,
    /// Berkhin's rule: the single node with the largest residue.
    SingleMaxResidue,
    /// FOCS'06 rule: one arbitrary node with residue `≥ η`.
    SingleAboveThreshold,
}

/// Stop condition for a (resumed) BCA run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BcaStop {
    /// Stop once `‖r‖₁ ≤` this threshold (`δ` in the paper).
    pub residue_norm: f64,
    /// Stop after at most this many additional iterations.
    pub max_iterations: u32,
}

impl BcaStop {
    /// Stop rule matching the index-construction defaults of `params`.
    pub fn from_params(params: &BcaParams) -> Self {
        Self { residue_norm: params.residue_threshold, max_iterations: params.max_iterations }
    }

    /// Exactly one more iteration (query-time refinement, Alg. 4 line 13).
    pub fn one_iteration() -> Self {
        Self { residue_norm: 0.0, max_iterations: 1 }
    }
}

/// Work metrics for a run (used by benches and the experiment harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BcaWork {
    /// Iterations executed.
    pub iterations: u32,
    /// Node propagations (frontier members processed).
    pub propagations: u64,
    /// Edge pushes performed.
    pub pushes: u64,
}

/// Compact, resumable state of one BCA computation from a source node.
///
/// The offline index stores one snapshot per graph node (`R`, `W`, `S`
/// matrices of Alg. 1); query-time refinement loads it, advances a few
/// iterations, and stores it back.
#[derive(Clone, Debug, PartialEq)]
pub struct BcaSnapshot {
    /// Source node `u` the ink was injected at.
    pub source: u32,
    /// Total iterations executed so far (`t_u`).
    pub iterations: u32,
    /// Residue ink `r` (non-hub nodes only).
    pub residue: SparseVector,
    /// Retained ink `w` (non-hub nodes only).
    pub retained: SparseVector,
    /// Ink parked at hubs `s`.
    pub hub_ink: SparseVector,
}

impl BcaSnapshot {
    /// `‖r‖₁` — the residual mass that has not yet been retained or parked.
    pub fn residue_norm(&self) -> f64 {
        self.residue.sum()
    }

    /// `‖w‖₁ + ‖s‖₁` — mass already accounted for; with exact hub vectors the
    /// materialized `p^t_u` sums to exactly this.
    pub fn settled_mass(&self) -> f64 {
        self.retained.sum() + self.hub_ink.sum()
    }

    /// Approximate heap footprint in bytes (index size accounting).
    pub fn heap_bytes(&self) -> usize {
        self.residue.heap_bytes() + self.retained.heap_bytes() + self.hub_ink.heap_bytes()
    }
}

/// Reusable BCA executor over one graph + hub set.
///
/// Owns dense scratch buffers sized to the graph, so building one engine and
/// running it across many sources (index construction) performs no per-source
/// allocation beyond the output snapshots.
pub struct BcaEngine {
    hubs: HubSet,
    params: BcaParams,
    strategy: PropagationStrategy,
    residue: EpochScratch,
    retained: EpochScratch,
    hub_ink: EpochScratch,
    residue_norm: f64,
    work: BcaWork,
}

impl BcaEngine {
    /// Creates an engine. `hubs` may be empty (plain BCA). Scratch buffers
    /// are sized from the hub set's node count; every call takes the
    /// transition matrix explicitly, so one engine can outlive any borrow of
    /// the graph (the facade crate relies on this).
    ///
    /// # Panics
    /// Panics if `params` are invalid.
    pub fn new(hubs: HubSet, params: BcaParams, strategy: PropagationStrategy) -> Self {
        params.validate();
        let n = hubs.node_count();
        Self {
            hubs,
            params,
            strategy,
            residue: EpochScratch::new(n),
            retained: EpochScratch::new(n),
            hub_ink: EpochScratch::new(n),
            residue_norm: 0.0,
            work: BcaWork::default(),
        }
    }

    /// The hub set this engine propagates against.
    pub fn hubs(&self) -> &HubSet {
        &self.hubs
    }

    /// Cumulative work counters across all runs of this engine.
    pub fn work(&self) -> BcaWork {
        self.work
    }

    /// Injects unit ink at `source` and runs until `stop`.
    ///
    /// The injection always lands in the residue vector — even for a hub
    /// source, whose ink is then swept into `s` by the first iteration's
    /// Eq. 6 step, matching the paper's uniform treatment of all nodes.
    pub fn run_from(
        &mut self,
        transition: &TransitionMatrix<'_>,
        source: u32,
        stop: &BcaStop,
    ) -> BcaSnapshot {
        let n = transition.node_count();
        assert_eq!(n, self.residue.len(), "BcaEngine: graph/hub-set node count mismatch");
        assert!((source as usize) < n, "BcaEngine: source {source} out of range");
        self.clear();
        self.residue.add(source as usize, 1.0);
        self.residue_norm = 1.0;
        let iterations = self.iterate(transition, stop);
        self.unload(source, iterations)
    }

    /// Loads `snapshot`, advances it until `stop`, and stores the result back.
    /// Returns the number of iterations actually executed.
    pub fn resume(
        &mut self,
        transition: &TransitionMatrix<'_>,
        snapshot: &mut BcaSnapshot,
        stop: &BcaStop,
    ) -> u32 {
        assert_eq!(
            transition.node_count(),
            self.residue.len(),
            "BcaEngine: graph/hub-set node count mismatch"
        );
        self.clear();
        snapshot.residue.scatter_into(1.0, &mut self.residue);
        snapshot.retained.scatter_into(1.0, &mut self.retained);
        snapshot.hub_ink.scatter_into(1.0, &mut self.hub_ink);
        self.residue_norm = snapshot.residue.sum();
        let executed = self.iterate(transition, stop);
        let mut out = self.unload(snapshot.source, snapshot.iterations + executed);
        std::mem::swap(snapshot, &mut out);
        executed
    }

    fn clear(&mut self) {
        self.residue.reset();
        self.retained.reset();
        self.hub_ink.reset();
        self.residue_norm = 0.0;
    }

    fn unload(&mut self, source: u32, iterations: u32) -> BcaSnapshot {
        BcaSnapshot {
            source,
            iterations,
            residue: self.residue.to_sparse(0.0),
            retained: self.retained.to_sparse(0.0),
            hub_ink: self.hub_ink.to_sparse(0.0),
        }
    }

    /// Numerical exhaustion floor for `‖r‖₁`. Below the smallest normal
    /// `f64` the remaining "mass" is denormal noise, and propagation can
    /// **livelock**: for a residue at the denormal minimum, `0.85·r` rounds
    /// back up to `r`, so an out-degree-1 node pushes its residue forward
    /// undiminished and a probability-1 cycle circulates it forever. A run
    /// whose norm is under this floor is treated as exhausted — the mass
    /// unaccounted for (`≤ n·2.2e−308`) is far below every tolerance in the
    /// system.
    const RESIDUE_FLOOR: f64 = f64::MIN_POSITIVE;

    /// Core loop; returns iterations executed.
    ///
    /// Each iteration mirrors the paper's simultaneous update of Eqs. 6, 8
    /// and 9: first the ink sitting at hubs (still part of `r_{t−1}` and of
    /// `‖r‖₁` — this is what makes Figure 2's `‖r₄‖ = 0.36` come out) is
    /// swept into `s`; then the frontier chosen from `r_{t−1}` retains `α`
    /// and pushes `1−α`, with pushes *into* hubs landing back in `r` to be
    /// swept next iteration.
    fn iterate(&mut self, transition: &TransitionMatrix<'_>, stop: &BcaStop) -> u32 {
        let mut executed = 0u32;
        let mut frontier: Vec<(u32, f64)> = Vec::new();
        let mut swept: Vec<u32> = Vec::new();
        let stop_norm = stop.residue_norm.max(Self::RESIDUE_FLOOR);
        while executed < stop.max_iterations && self.residue_norm > stop_norm {
            // Eq. 6: s_t = Σ_{i∈H} r_{t−1}(i)·e_i + s_{t−1}, removing the
            // swept ink from the residue.
            swept.clear();
            for (i, v) in self.residue.iter_touched() {
                if v > 0.0 && self.hubs.contains(i) {
                    swept.push(i);
                }
            }
            let mut progressed = !swept.is_empty();
            for &i in &swept {
                let v = self.residue.get(i as usize);
                self.hub_ink.add(i as usize, v);
                self.residue.set(i as usize, 0.0);
                self.residue_norm -= v;
            }

            // Frontier selection over the (non-hub) residue r_{t−1}.
            frontier.clear();
            match self.strategy {
                PropagationStrategy::BatchThreshold => {
                    let eta = self.params.propagation_threshold;
                    for (i, v) in self.residue.iter_touched() {
                        if v >= eta {
                            frontier.push((i, v));
                        }
                    }
                    if frontier.is_empty() {
                        // Sub-η regime: the paper's analysis stops refining
                        // "until the maximum residue drops below η" (Thm. 3),
                        // but deciding borderline candidates *exactly* needs
                        // tighter bounds. Batch every node above half the
                        // maximum residue so the residual keeps decaying
                        // geometrically instead of draining one node at a
                        // time (see DESIGN.md §3).
                        if let Some((_, rmax)) = self.max_residue_node() {
                            // `rmax / 2` can underflow to 0 once the residue
                            // reaches the denormal floor; the `v > 0` guard
                            // keeps zero-valued touched slots (no-op pushes)
                            // out of the frontier.
                            let adaptive = rmax / 2.0;
                            for (i, v) in self.residue.iter_touched() {
                                if v >= adaptive && v > 0.0 {
                                    frontier.push((i, v));
                                }
                            }
                        }
                    }
                }
                PropagationStrategy::SingleMaxResidue => {
                    if let Some(best) = self.max_residue_node() {
                        frontier.push(best);
                    }
                }
                PropagationStrategy::SingleAboveThreshold => {
                    let eta = self.params.propagation_threshold;
                    if let Some(pick) = self.residue.iter_touched().find(|&(_, v)| v >= eta) {
                        frontier.push(pick);
                    }
                }
            }
            if frontier.is_empty() && !progressed {
                // Sub-threshold residue everywhere and nothing parked at
                // hubs: fall back to the single largest residue so
                // refinement always makes progress (the paper is silent
                // here; see DESIGN.md).
                if let Some(best) = self.max_residue_node() {
                    frontier.push(best);
                } else {
                    break; // no residue at all
                }
            }

            // Phase 1 (Eq. 9, second term): withdraw the frontier's residue
            // *before* any pushes so this iteration uses r_{t−1} throughout.
            for &(v, rv) in &frontier {
                debug_assert!(rv > 0.0);
                self.residue.set(v as usize, 0.0);
                self.residue_norm -= rv;
            }

            // Phase 2 (Eqs. 8, 9 first term): retain α, push 1−α. Pushes to
            // hubs stay in `r` until next iteration's sweep.
            let alpha = self.params.alpha;
            for &(v, rv) in &frontier {
                self.retained.add(v as usize, alpha * rv);
                let spill = (1.0 - alpha) * rv;
                // Kernel-backed when the view carries one: same values, but
                // ids and probabilities come from adjacent contiguous arrays.
                let (targets, probs) = transition.out_edges(v);
                for (&t, &p) in targets.iter().zip(probs) {
                    let amount = spill * p;
                    self.residue.add(t as usize, amount);
                    self.residue_norm += amount;
                }
                self.work.pushes += targets.len() as u64;
            }
            progressed |= !frontier.is_empty();
            if !progressed {
                break;
            }
            self.work.propagations += frontier.len() as u64;
            executed += 1;
            // Guard against accumulated floating error pushing the norm
            // slightly negative near exhaustion.
            if self.residue_norm < 0.0 {
                self.residue_norm = 0.0;
            }
        }
        self.work.iterations += executed;
        executed
    }

    fn max_residue_node(&self) -> Option<(u32, f64)> {
        let mut best: Option<(u32, f64)> = None;
        for (i, v) in self.residue.iter_touched() {
            if v > 0.0 {
                match best {
                    Some((bi, bv)) if bv > v || (bv == v && bi < i) => {}
                    _ => best = Some((i, v)),
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::proximity_matrix_dense;
    use crate::params::RwrParams;
    use crate::power::proximity_from;
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn exhaustive_stop() -> BcaStop {
        BcaStop { residue_norm: 1e-12, max_iterations: 1_000_000 }
    }

    #[test]
    fn conservation_invariant_holds_throughout() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let hubs = HubSet::from_ids(6, vec![0, 1]);
        let mut engine =
            BcaEngine::new(hubs, BcaParams::default(), PropagationStrategy::BatchThreshold);
        let mut snap = engine.run_from(&t, 3, &BcaStop { residue_norm: 0.5, max_iterations: 1 });
        for _ in 0..20 {
            let total = snap.residue_norm() + snap.settled_mass();
            assert!((total - 1.0).abs() < 1e-12, "mass leaked: {total}");
            engine.resume(&t, &mut snap, &BcaStop::one_iteration());
        }
    }

    #[test]
    fn no_hub_bca_converges_to_power_method() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = BcaParams::exhaustive(0.15);
        for strategy in [
            PropagationStrategy::BatchThreshold,
            PropagationStrategy::SingleMaxResidue,
            PropagationStrategy::SingleAboveThreshold,
        ] {
            let mut engine = BcaEngine::new(HubSet::empty(6), params, strategy);
            for u in 0..6u32 {
                let snap = engine.run_from(&t, u, &exhaustive_stop());
                let (pm, _) = proximity_from(&t, u, &RwrParams::default());
                let w = snap.retained.to_dense(6);
                for v in 0..6 {
                    assert!(
                        (w[v] - pm[v]).abs() < 1e-8,
                        "{strategy:?} u={u} v={v}: {} vs {}",
                        w[v],
                        pm[v]
                    );
                }
                assert!(snap.hub_ink.is_empty());
            }
        }
    }

    #[test]
    fn hub_materialization_recovers_exact_proximity() {
        // w + Σ_h s(h)·p_h must equal p_u when BCA runs to exhaustion.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let exact = proximity_matrix_dense(&t, 0.15);
        let hubs = HubSet::from_ids(6, vec![0, 1]);
        let mut engine =
            BcaEngine::new(hubs, BcaParams::exhaustive(0.15), PropagationStrategy::BatchThreshold);
        for u in 2..6u32 {
            let snap = engine.run_from(&t, u, &exhaustive_stop());
            let mut p = snap.retained.to_dense(6);
            for (h, sh) in snap.hub_ink.iter() {
                for v in 0..6 {
                    p[v] += sh * exact[h as usize][v];
                }
            }
            for v in 0..6 {
                assert!(
                    (p[v] - exact[u as usize][v]).abs() < 1e-8,
                    "u={u} v={v}: {} vs {}",
                    p[v],
                    exact[u as usize][v]
                );
            }
        }
    }

    #[test]
    fn source_at_hub_parks_everything() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let hubs = HubSet::from_ids(6, vec![0, 1]);
        let mut engine =
            BcaEngine::new(hubs, BcaParams::default(), PropagationStrategy::BatchThreshold);
        let snap = engine.run_from(&t, 1, &BcaStop::from_params(&BcaParams::default()));
        assert_eq!(snap.hub_ink.get(1), 1.0);
        assert!(snap.residue.is_empty());
        assert!(snap.retained.is_empty());
        assert_eq!(snap.residue_norm(), 0.0);
    }

    #[test]
    fn retained_ink_is_monotone_under_refinement() {
        // Prop. 1: every entry of w (and s) only grows with more iterations.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let hubs = HubSet::from_ids(6, vec![1]);
        let mut engine =
            BcaEngine::new(hubs, BcaParams::default(), PropagationStrategy::BatchThreshold);
        let mut snap = engine.run_from(&t, 2, &BcaStop { residue_norm: 0.9, max_iterations: 1 });
        let mut prev_w = snap.retained.to_dense(6);
        let mut prev_s = snap.hub_ink.to_dense(6);
        for _ in 0..15 {
            engine.resume(&t, &mut snap, &BcaStop::one_iteration());
            let w = snap.retained.to_dense(6);
            let s = snap.hub_ink.to_dense(6);
            for v in 0..6 {
                assert!(w[v] >= prev_w[v] - 1e-15, "w({v}) shrank");
                assert!(s[v] >= prev_s[v] - 1e-15, "s({v}) shrank");
            }
            prev_w = w;
            prev_s = s;
        }
    }

    #[test]
    fn residue_norm_shrinks_every_iteration() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut engine = BcaEngine::new(
            HubSet::empty(6),
            BcaParams::default(),
            PropagationStrategy::BatchThreshold,
        );
        let mut snap = engine.run_from(&t, 0, &BcaStop { residue_norm: 0.99, max_iterations: 1 });
        let mut prev = snap.residue_norm();
        for _ in 0..10 {
            engine.resume(&t, &mut snap, &BcaStop::one_iteration());
            let cur = snap.residue_norm();
            assert!(cur < prev, "residue should strictly shrink: {cur} vs {prev}");
            prev = cur;
        }
    }

    #[test]
    fn stop_rule_residue_threshold_is_respected() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut engine = BcaEngine::new(
            HubSet::empty(6),
            BcaParams::default(),
            PropagationStrategy::BatchThreshold,
        );
        let snap = engine.run_from(&t, 0, &BcaStop { residue_norm: 0.3, max_iterations: 10_000 });
        assert!(snap.residue_norm() <= 0.3);
        // ... but not absurdly small: BCA stops as soon as the rule is met.
        assert!(snap.residue_norm() > 1e-6);
    }

    #[test]
    fn resume_equals_uninterrupted_run_for_batch() {
        // Batch propagation is deterministic, so running 2 iterations then 3
        // must equal running 5 straight.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = BcaParams::default();
        fn mk(params: BcaParams) -> BcaEngine {
            BcaEngine::new(
                HubSet::from_ids(6, vec![1]),
                params,
                PropagationStrategy::BatchThreshold,
            )
        }
        let mut spliced =
            mk(params).run_from(&t, 2, &BcaStop { residue_norm: 0.0, max_iterations: 2 });
        mk(params).resume(&t, &mut spliced, &BcaStop { residue_norm: 0.0, max_iterations: 3 });
        let straight =
            mk(params).run_from(&t, 2, &BcaStop { residue_norm: 0.0, max_iterations: 5 });
        assert_eq!(spliced.iterations, straight.iterations);
        let (a, b) = (spliced.retained.to_dense(6), straight.retained.to_dense(6));
        for v in 0..6 {
            assert!((a[v] - b[v]).abs() < 1e-15);
        }
        assert_eq!(spliced.residue, straight.residue);
    }

    #[test]
    fn batch_needs_fewer_iterations_than_single() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = BcaParams { residue_threshold: 0.01, ..Default::default() };
        let stop = BcaStop::from_params(&params);
        let mut batch =
            BcaEngine::new(HubSet::empty(6), params, PropagationStrategy::BatchThreshold);
        let mut single =
            BcaEngine::new(HubSet::empty(6), params, PropagationStrategy::SingleMaxResidue);
        let b = batch.run_from(&t, 0, &stop);
        let s = single.run_from(&t, 0, &stop);
        assert!(b.iterations < s.iterations, "batch {} vs single {}", b.iterations, s.iterations);
    }

    #[test]
    fn work_counters_accumulate() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut engine = BcaEngine::new(
            HubSet::empty(6),
            BcaParams::default(),
            PropagationStrategy::BatchThreshold,
        );
        engine.run_from(&t, 0, &BcaStop { residue_norm: 0.1, max_iterations: 100 });
        let w = engine.work();
        assert!(w.iterations > 0 && w.propagations > 0 && w.pushes > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_source() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut engine = BcaEngine::new(
            HubSet::empty(6),
            BcaParams::default(),
            PropagationStrategy::BatchThreshold,
        );
        engine.run_from(&t, 6, &BcaStop::one_iteration());
    }
}
