//! Forward power-method solvers (Eq. 12 and Eq. 3 of the paper).

use crate::params::RwrParams;
use rtk_graph::TransitionMatrix;
use rtk_sparse::dense;

/// Convergence report attached to every solver result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveReport {
    /// Iterations actually performed.
    pub iterations: u32,
    /// Final L1 distance between the last two iterates.
    pub final_delta: f64,
    /// Whether `final_delta < ε` was reached within the iteration cap.
    pub converged: bool,
}

/// Computes the proximity vector `p_u` — column `u` of the proximity matrix
/// `P` — by the iteration `x ← (1−α)·A·x + α·e_u` (Eq. 12).
///
/// Returns the vector and a [`SolveReport`]. The result is non-negative and
/// sums to 1 (up to `ε`).
pub fn proximity_from(
    transition: &TransitionMatrix<'_>,
    u: u32,
    params: &RwrParams,
) -> (Vec<f64>, SolveReport) {
    params.validate();
    let n = transition.node_count();
    assert!((u as usize) < n, "proximity_from: node {u} out of range");
    let mut restart = vec![0.0; n];
    restart[u as usize] = 1.0;
    solve_forward(transition, &restart, params)
}

/// Computes the global PageRank vector `pr = P·e/n` (Eq. 3): the stationary
/// distribution of a walk restarting uniformly.
pub fn pagerank(transition: &TransitionMatrix<'_>, params: &RwrParams) -> (Vec<f64>, SolveReport) {
    params.validate();
    let n = transition.node_count();
    let restart = vec![1.0 / n as f64; n];
    solve_forward(transition, &restart, params)
}

/// Computes a personalized PageRank vector `ppr_v = P·v` (Eq. 3) for an
/// arbitrary restart distribution `v` (non-negative, summing to 1).
pub fn personalized_pagerank(
    transition: &TransitionMatrix<'_>,
    restart: &[f64],
    params: &RwrParams,
) -> (Vec<f64>, SolveReport) {
    params.validate();
    assert_eq!(restart.len(), transition.node_count(), "restart length mismatch");
    assert!(restart.iter().all(|&v| v >= 0.0), "restart must be non-negative");
    let sum: f64 = restart.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "restart must sum to 1, got {sum}");
    solve_forward(transition, restart, params)
}

/// Shared iteration: `x ← (1−α)·A·x + α·restart` until the L1 step-change
/// drops below `ε`. The restart vector is folded in densely, so this handles
/// unit, uniform, and arbitrary personalization alike. Each `A·x` product
/// runs over `params.threads` workers (`0` = all cores) with bitwise
/// identical results for any thread count.
fn solve_forward(
    transition: &TransitionMatrix<'_>,
    restart: &[f64],
    params: &RwrParams,
) -> (Vec<f64>, SolveReport) {
    let n = transition.node_count();
    let mut x = restart.to_vec();
    let mut y = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;
    while iterations < params.max_iterations {
        // y = (1-α) A x + α restart, via the CSC gather.
        transition.apply_forward_restart_threaded(
            params.alpha,
            &x,
            restart,
            &mut y,
            params.threads,
        );
        iterations += 1;
        delta = dense::l1_distance(&x, &y);
        std::mem::swap(&mut x, &mut y);
        if delta < params.epsilon {
            break;
        }
    }
    let converged = delta < params.epsilon;
    (x, SolveReport { iterations, final_delta: delta, converged })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::{DanglingPolicy, GraphBuilder};

    fn toy() -> rtk_graph::DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn reproduces_paper_figure_1_matrix() {
        // Column-by-column check of Figure 1's proximity matrix (2 decimals).
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let expected: [[f64; 6]; 6] = [
            [0.32, 0.28, 0.12, 0.13, 0.06, 0.09],
            [0.24, 0.39, 0.17, 0.10, 0.04, 0.07],
            [0.24, 0.29, 0.27, 0.10, 0.04, 0.07],
            [0.19, 0.31, 0.13, 0.23, 0.10, 0.05],
            [0.20, 0.33, 0.14, 0.08, 0.18, 0.06],
            [0.18, 0.30, 0.13, 0.14, 0.06, 0.20],
        ];
        for u in 0..6u32 {
            let (p, report) = proximity_from(&t, u, &params);
            assert!(report.converged);
            for v in 0..6 {
                assert!(
                    (p[v] - expected[u as usize][v]).abs() < 5e-3,
                    "p_{}({}) = {} vs paper {}",
                    u + 1,
                    v + 1,
                    p[v],
                    expected[u as usize][v]
                );
            }
        }
    }

    #[test]
    fn proximity_vector_is_a_distribution() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let (p, _) = proximity_from(&t, 3, &RwrParams::default());
        assert!(p.iter().all(|&v| v >= 0.0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn restart_node_dominates_with_high_alpha() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let (p, _) = proximity_from(&t, 2, &RwrParams::with_alpha(0.9));
        let max = rtk_sparse::dense::argmax(&p).unwrap();
        assert_eq!(max, 2);
        assert!(p[2] > 0.9);
    }

    #[test]
    fn pagerank_averages_columns() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let (pr, _) = pagerank(&t, &params);
        let mut avg = [0.0; 6];
        for u in 0..6u32 {
            let (p, _) = proximity_from(&t, u, &params);
            for v in 0..6 {
                avg[v] += p[v] / 6.0;
            }
        }
        for v in 0..6 {
            assert!((pr[v] - avg[v]).abs() < 1e-7, "pagerank({v})");
        }
    }

    #[test]
    fn personalized_pagerank_matches_mixture() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let restart = [0.5, 0.0, 0.0, 0.5, 0.0, 0.0];
        let (ppr, _) = personalized_pagerank(&t, &restart, &params);
        let (p0, _) = proximity_from(&t, 0, &params);
        let (p3, _) = proximity_from(&t, 3, &params);
        for v in 0..6 {
            assert!((ppr[v] - 0.5 * (p0[v] + p3[v])).abs() < 1e-7);
        }
    }

    #[test]
    fn iteration_count_respects_theorem_bound() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let (_, report) = proximity_from(&t, 0, &params);
        assert!(report.iterations <= params.iteration_bound() + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_node() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        proximity_from(&t, 99, &RwrParams::default());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized_restart() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        personalized_pagerank(&t, &[0.5; 6], &RwrParams::default());
    }
}
