//! The owning engine: graph + index + query session in one value.

use crate::error::EngineError;
use rtk_graph::{DiGraph, EdgeSplice, NodeId, TransitionKernel, TransitionMatrix, TransitionProbs};
use rtk_index::{
    HubSelection, HubSolver, IndexConfig, IndexStats, ReverseIndex, UpdateEffect, UpdateRecord,
};
use rtk_query::{QueryEngine, QueryOptions, QueryResult};
use rtk_rwr::{BcaParams, RwrParams};
use std::io::{Read, Write};
use std::path::Path;

/// An owning reverse top-k search engine.
///
/// ```
/// use rtk_core::{ReverseTopkEngine, graph::NodeId};
///
/// // The 6-node toy graph of the paper's Figure 1.
/// let mut engine = ReverseTopkEngine::builder(rtk_datasets::toy_graph())
///     .max_k(3)
///     .hubs_per_direction(1)
///     .build()
///     .unwrap();
///
/// // Reverse top-2 of node 0: who ranks node 0 among their 2 closest?
/// let result = engine.query(NodeId(0), 2).unwrap();
/// assert_eq!(result.nodes(), &[0, 1, 4]);
///
/// // The forward direction for one of them agrees.
/// let top = engine.top_k(NodeId(4), 2).unwrap();
/// assert!(top.iter().any(|&(v, _)| v == NodeId(0)));
/// ```
///
/// Construct through [`ReverseTopkEngine::builder`]. The engine owns the
/// graph, the offline index (which it refines across queries in `update`
/// mode), the reusable query buffers, **and the cached `O(|E|)` transition
/// probabilities** — every query/top-k/proximity call wraps the cache in an
/// `O(1)` [`TransitionMatrix`] view instead of recomputing it. The only
/// mutating graph APIs, [`Self::add_edge`] / [`Self::remove_edge`], splice
/// the caches in place (bitwise-equal to recomputing them); the view
/// constructor asserts graph/cache agreement as a backstop.
pub struct ReverseTopkEngine {
    graph: DiGraph,
    /// Cached transition probabilities for `graph` (kept in sync by
    /// construction; edge updates splice the touched row in place).
    probs: TransitionProbs,
    /// Cached flat-CSR gather kernel for `graph` + `probs`, so every query's
    /// SpMV and BCA push loops run the contiguous layout (same lifecycle as
    /// `probs`; answers are bitwise identical with or without it).
    kernel: TransitionKernel,
    index: ReverseIndex,
    session: QueryEngine,
    options: QueryOptions,
}

impl ReverseTopkEngine {
    /// Starts configuring an engine for `graph`.
    pub fn builder(graph: DiGraph) -> EngineBuilder {
        EngineBuilder { graph, config: IndexConfig::default(), options: QueryOptions::default() }
    }

    /// Rebuilds an engine from a graph and a previously built index
    /// (e.g. one loaded via [`rtk_index::storage::load`]).
    pub fn from_parts(graph: DiGraph, index: ReverseIndex) -> Result<Self, EngineError> {
        if graph.node_count() != index.node_count() {
            return Err(EngineError::Query(rtk_query::QueryError::GraphMismatch {
                index_nodes: index.node_count(),
                graph_nodes: graph.node_count(),
            }));
        }
        let dangling = graph.dangling_nodes();
        if let Some(&node) = dangling.first() {
            return Err(EngineError::Graph(rtk_graph::GraphError::DanglingNode {
                node,
                count: dangling.len(),
            }));
        }
        let probs = TransitionProbs::compute(&graph);
        let kernel = TransitionKernel::build(&graph, &probs);
        let session = QueryEngine::new(&index);
        Ok(Self { graph, probs, kernel, index, session, options: QueryOptions::default() })
    }

    /// The cached transition view — `O(1)`, no allocation, kernel-backed.
    fn transition(&self) -> TransitionMatrix<'_> {
        TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel)
    }

    /// Recomputes the cached transition probabilities (and gather kernel)
    /// from the graph. Currently only needed if the graph is swapped through
    /// future APIs; kept public so embedders mutating via `from_parts`
    /// round-trips can re-validate the cache explicitly.
    pub fn refresh_transition_cache(&mut self) {
        self.probs = TransitionProbs::compute(&self.graph);
        self.kernel = TransitionKernel::build(&self.graph, &self.probs);
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The offline index (read-only view).
    pub fn index(&self) -> &ReverseIndex {
        &self.index
    }

    /// Index construction statistics.
    pub fn index_stats(&self) -> &IndexStats {
        self.index.stats()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of index shards `S`.
    pub fn shard_count(&self) -> usize {
        self.index.shard_count()
    }

    /// Re-partitions the index into `shards` even node-range shards. A pure
    /// layout change: every per-node state is preserved bitwise, so answers
    /// are unaffected (`rtk shard split|merge` offline, or an embedder
    /// retuning a loaded snapshot).
    pub fn reshard(&mut self, shards: usize) {
        self.index.repartition(shards);
    }

    /// Inserts the edge `from → to` (or accumulates `weight` onto an
    /// existing one) and incrementally repairs everything downstream: the
    /// spliced transition caches stay bitwise-equal to a from-scratch
    /// rebuild, and the index recompute is limited to the affected set
    /// (nodes that can reach `from`; see [`rtk_index::update`]). Returns
    /// what was invalidated.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<UpdateEffect, EngineError> {
        let splice = self.graph.add_edge(from.0, to.0, weight)?;
        Ok(self.apply_splice(&splice))
    }

    /// Removes the edge `from → to` entirely (errors if it does not exist,
    /// or if removing it would leave `from` dangling) and incrementally
    /// repairs the transition caches and the affected index entries, as
    /// [`Self::add_edge`] does.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<UpdateEffect, EngineError> {
        let splice = self.graph.remove_edge(from.0, to.0)?;
        Ok(self.apply_splice(&splice))
    }

    /// Replays a decoded `RTKULOG1` update log in order. Applied on top of
    /// the snapshot the log was recorded against, this reproduces the live
    /// engine's post-update index byte-for-byte — every recompute is a
    /// deterministic function of (graph, edit).
    pub fn replay_updates(
        &mut self,
        records: &[UpdateRecord],
    ) -> Result<UpdateEffect, EngineError> {
        let mut total = UpdateEffect::default();
        for record in records {
            let effect = match *record {
                UpdateRecord::AddEdge { from, to, weight } => {
                    self.add_edge(NodeId(from), NodeId(to), weight)?
                }
                UpdateRecord::RemoveEdge { from, to } => {
                    self.remove_edge(NodeId(from), NodeId(to))?
                }
            };
            total.merge(effect);
        }
        Ok(total)
    }

    /// Splices the cached transition probabilities and kernel (bitwise-equal
    /// to recomputing them) and applies the targeted index recompute.
    fn apply_splice(&mut self, splice: &EdgeSplice) -> UpdateEffect {
        self.probs.apply_splice(&self.graph, splice);
        self.kernel.apply_splice(&self.graph, &self.probs, splice);
        let transition =
            TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel);
        self.index.apply_update(&transition, splice.from)
    }

    /// A stable digest (FNV-1a 64) of the exact bytes
    /// [`rtk_index::storage::save`] would persist for the current index.
    /// Two engines answer identically whenever their digests match; the
    /// router compares these over the wire (`stats`) to assert replica
    /// convergence after updates.
    pub fn index_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        rtk_index::storage::save(&self.index, &mut bytes)
            .expect("in-memory index serialization cannot fail");
        crate::digest::fnv1a64(&bytes)
    }

    /// The default query options used by [`Self::query`].
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Replaces the default query options.
    pub fn set_options(&mut self, options: QueryOptions) {
        self.options = options;
    }

    /// Runs a reverse top-k query with the engine's default options.
    pub fn query(&mut self, q: NodeId, k: usize) -> Result<QueryResult, EngineError> {
        let options = self.options;
        self.query_with(q, k, &options)
    }

    /// Runs a reverse top-k query with explicit options.
    pub fn query_with(
        &mut self,
        q: NodeId,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, EngineError> {
        let transition =
            TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel);
        Ok(self.session.query(&transition, &mut self.index, q.0, k, options)?)
    }

    /// Runs many reverse top-k queries *serially* over the cached transition
    /// view. Unlike [`Self::query_batch`] this honors `update` mode — each
    /// query observes the refinements of the previous ones.
    pub fn query_many(
        &mut self,
        queries: &[(NodeId, usize)],
        options: &QueryOptions,
    ) -> Result<Vec<QueryResult>, EngineError> {
        let transition =
            TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel);
        let mut out = Vec::with_capacity(queries.len());
        for &(q, k) in queries {
            out.push(self.session.query(&transition, &mut self.index, q.0, k, options)?);
        }
        Ok(out)
    }

    /// Fans independent reverse top-k queries across
    /// [`QueryOptions::query_threads`] workers (throughput mode). Always the
    /// paper's `no-update` mode, so `results[i]` equals a frozen
    /// single-query run of `queries[i]`, in input order.
    pub fn query_batch(
        &self,
        queries: &[(NodeId, usize)],
        options: &QueryOptions,
    ) -> Result<Vec<QueryResult>, EngineError> {
        let transition = self.transition();
        let raw: Vec<(u32, usize)> = queries.iter().map(|&(q, k)| (q.0, k)).collect();
        Ok(self.session.query_batch(&transition, &self.index, &raw, options)?)
    }

    /// Forward top-k RWR search: the `k` nodes with the highest proximity
    /// *from* `u`, descending.
    pub fn top_k(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, EngineError> {
        self.check_node(u)?;
        let transition = self.transition();
        let params = self.solver_params();
        let top = rtk_query::baseline::top_k_rwr(&transition, u.0, k, &params);
        Ok(top.into_iter().map(|(v, p)| (NodeId(v), p)).collect())
    }

    /// Early-terminating forward top-k search (BPA-style, §6.2): usually far
    /// fewer iterations than [`Self::top_k`]. The returned *set* is exact
    /// (up to value ties below 1e-9); the proximities are lower bounds and
    /// the internal order follows them, not the converged ranking.
    pub fn top_k_early(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, EngineError> {
        self.check_node(u)?;
        let transition = self.transition();
        let params = rtk_rwr::BcaParams {
            alpha: self.index.config().alpha(),
            propagation_threshold: 1e-7,
            residue_threshold: 0.0,
            max_iterations: 100_000,
        };
        let (top, _) = rtk_query::top_k_rwr_early(&transition, u.0, k, &params);
        Ok(top.into_iter().map(|(v, p)| (NodeId(v), p)).collect())
    }

    /// Exact proximities *to* `q` from every node (PMPN, Alg. 2):
    /// `result[u] = p_u(q)`.
    pub fn proximities_to(&self, q: NodeId) -> Result<Vec<f64>, EngineError> {
        self.check_node(q)?;
        let transition = self.transition();
        let params = self.solver_params();
        Ok(rtk_rwr::proximity_to(&transition, q.0, &params).0)
    }

    /// Exact proximities *from* `u` to every node (forward power method):
    /// `result[v] = p_u(v)`.
    pub fn proximities_from(&self, u: NodeId) -> Result<Vec<f64>, EngineError> {
        self.check_node(u)?;
        let transition = self.transition();
        let params = self.solver_params();
        Ok(rtk_rwr::proximity_from(&transition, u.0, &params).0)
    }

    /// Solver parameters for the facade's standalone proximity calls: the
    /// index's `α`, SpMV threads from the default query options.
    fn solver_params(&self) -> RwrParams {
        RwrParams::with_alpha(self.index.config().alpha()).with_threads(self.options.query_threads)
    }

    /// Persists graph + index into one stream. Each section is length-
    /// prefixed so the (buffered) section decoders cannot over-read.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), EngineError> {
        let io_err = EngineError::from_io;
        writer.write_all(ENGINE_MAGIC).map_err(io_err)?;

        let mut graph_bytes = Vec::new();
        rtk_graph::io::write_binary(&self.graph, &mut graph_bytes)?;
        writer.write_all(&(graph_bytes.len() as u64).to_le_bytes()).map_err(io_err)?;
        writer.write_all(&graph_bytes).map_err(io_err)?;

        let mut index_bytes = Vec::new();
        rtk_index::storage::save(&self.index, &mut index_bytes)?;
        writer.write_all(&(index_bytes.len() as u64).to_le_bytes()).map_err(io_err)?;
        writer.write_all(&index_bytes).map_err(io_err)?;
        Ok(())
    }

    /// Loads an engine persisted by [`Self::save`].
    pub fn load<R: Read>(mut reader: R) -> Result<Self, EngineError> {
        let io_err = EngineError::from_io;
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic).map_err(io_err)?;
        if &magic != ENGINE_MAGIC {
            return Err(EngineError::Graph(rtk_graph::GraphError::Parse {
                line: 0,
                message: "not an engine snapshot (bad magic)".into(),
            }));
        }
        let graph_bytes = read_section(&mut reader)?;
        let graph = rtk_graph::io::read_binary(graph_bytes.as_slice())?;
        let index_bytes = read_section(&mut reader)?;
        let index = rtk_index::storage::load(index_bytes.as_slice())?;
        Self::from_parts(graph, index)
    }

    /// Persists to a file path.
    pub fn save_path<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        let file = std::fs::File::create(path).map_err(rtk_graph::GraphError::Io)?;
        self.save(file)
    }

    /// Loads from a file path.
    pub fn load_path<P: AsRef<Path>>(path: P) -> Result<Self, EngineError> {
        let file = std::fs::File::open(path).map_err(rtk_graph::GraphError::Io)?;
        Self::load(file)
    }

    #[allow(clippy::wrong_self_convention)]
    fn check_node(&self, u: NodeId) -> Result<(), EngineError> {
        if u.index() >= self.graph.node_count() {
            return Err(EngineError::Query(rtk_query::QueryError::NodeOutOfRange {
                node: u.0,
                node_count: self.graph.node_count(),
            }));
        }
        Ok(())
    }
}

/// Magic tag of the engine snapshot container.
const ENGINE_MAGIC: &[u8; 8] = b"RTKENGN1";

/// Reads one `u64`-length-prefixed section.
fn read_section<R: Read>(reader: &mut R) -> Result<Vec<u8>, EngineError> {
    let mut len_bytes = [0u8; 8];
    reader.read_exact(&mut len_bytes).map_err(EngineError::from_io)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > 1 << 40 {
        return Err(EngineError::Graph(rtk_graph::GraphError::Parse {
            line: 0,
            message: format!("engine snapshot section of {len} bytes is implausible"),
        }));
    }
    let mut bytes = vec![0u8; len as usize];
    reader.read_exact(&mut bytes).map_err(EngineError::from_io)?;
    Ok(bytes)
}

impl EngineError {
    fn from_io(e: std::io::Error) -> Self {
        EngineError::Graph(rtk_graph::GraphError::Io(e))
    }
}

/// Configures and builds a [`ReverseTopkEngine`].
pub struct EngineBuilder {
    graph: DiGraph,
    config: IndexConfig,
    options: QueryOptions,
}

impl EngineBuilder {
    /// Sets the restart probability `α` (default 0.15) for the index, its
    /// hub solver, and all queries.
    pub fn restart_probability(mut self, alpha: f64) -> Self {
        self.config.bca.alpha = alpha;
        self.config.hub_solver = match self.config.hub_solver {
            HubSolver::PowerMethod(p) => HubSolver::PowerMethod(RwrParams { alpha, ..p }),
            HubSolver::Bca(p) => HubSolver::Bca(BcaParams { alpha, ..p }),
        };
        self
    }

    /// Sets `K`, the largest query `k` the index supports (default 200).
    pub fn max_k(mut self, max_k: usize) -> Self {
        self.config.max_k = max_k;
        self
    }

    /// Degree-based hub selection size `B` (default 50): the union of the
    /// `B` highest in-degree and `B` highest out-degree nodes become hubs.
    pub fn hubs_per_direction(mut self, b: usize) -> Self {
        self.config.hub_selection = HubSelection::DegreeBased { b };
        self
    }

    /// Fully custom hub selection.
    pub fn hub_selection(mut self, selection: HubSelection) -> Self {
        self.config.hub_selection = selection;
        self
    }

    /// Hub-vector rounding threshold `ω` (default 1e-6; 0 disables).
    pub fn rounding_threshold(mut self, omega: f64) -> Self {
        self.config.rounding_threshold = omega;
        self
    }

    /// BCA propagation threshold `η` (default 1e-4).
    pub fn propagation_threshold(mut self, eta: f64) -> Self {
        self.config.bca.propagation_threshold = eta;
        self
    }

    /// BCA residue threshold `δ` for index construction (default 0.1).
    pub fn residue_threshold(mut self, delta: f64) -> Self {
        self.config.bca.residue_threshold = delta;
        self
    }

    /// Worker threads for index construction (0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Number of contiguous node-range index shards (default 1; `0` also
    /// means one). Shard count, like thread count, may only change wall
    /// time and storage layout — never answers.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Worker threads for the online query hot path (0 = all cores, the
    /// default): PMPN matrix–vector products, the candidate screen phase,
    /// and the fan-out width of [`ReverseTopkEngine::query_batch`]. Results
    /// are identical for any value.
    pub fn query_threads(mut self, threads: usize) -> Self {
        self.options.query_threads = threads;
        self
    }

    /// Replaces the whole index configuration.
    pub fn index_config(mut self, config: IndexConfig) -> Self {
        self.config = config;
        self
    }

    /// Default query options (update mode, bound mode, …).
    pub fn query_options(mut self, options: QueryOptions) -> Self {
        self.options = options;
        self
    }

    /// Builds the index and assembles the engine. The transition
    /// probabilities computed for the build are kept as the engine's cache.
    pub fn build(self) -> Result<ReverseTopkEngine, EngineError> {
        let EngineBuilder { graph, config, options } = self;
        // Surface dangling nodes as an error instead of a downstream panic.
        let dangling = graph.dangling_nodes();
        if let Some(&node) = dangling.first() {
            return Err(EngineError::Graph(rtk_graph::GraphError::DanglingNode {
                node,
                count: dangling.len(),
            }));
        }
        let probs = TransitionProbs::compute(&graph);
        let kernel = TransitionKernel::build(&graph, &probs);
        let index = {
            let transition = TransitionMatrix::with_probs_and_kernel(&graph, &probs, &kernel);
            ReverseIndex::build(&transition, config)?
        };
        let session = QueryEngine::new(&index);
        Ok(ReverseTopkEngine { graph, probs, kernel, index, session, options })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::{DanglingPolicy, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn toy_engine() -> ReverseTopkEngine {
        ReverseTopkEngine::builder(toy())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_toy_query() {
        let mut engine = toy_engine();
        let result = engine.query(NodeId(0), 2).unwrap();
        assert_eq!(result.nodes(), &[0, 1, 4]);
        assert_eq!(engine.node_count(), 6);
        assert_eq!(engine.index_stats().hub_count, 2);
    }

    #[test]
    fn forward_top_k_through_facade() {
        let engine = toy_engine();
        // Figure 1: top-2 from node 3 (1-based) = nodes 2 and 3.
        let top = engine.top_k(NodeId(2), 2).unwrap();
        assert_eq!(top[0].0, NodeId(1));
        assert_eq!(top[1].0, NodeId(2));
    }

    #[test]
    fn proximity_vectors_are_consistent() {
        let engine = toy_engine();
        let to_q = engine.proximities_to(NodeId(0)).unwrap();
        for u in 0..6u32 {
            let from_u = engine.proximities_from(NodeId(u)).unwrap();
            assert!((to_q[u as usize] - from_u[0]).abs() < 1e-8);
        }
    }

    #[test]
    fn custom_alpha_flows_through() {
        let mut engine = ReverseTopkEngine::builder(toy())
            .restart_probability(0.5)
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .build()
            .unwrap();
        assert_eq!(engine.index().config().alpha(), 0.5);
        // High restart probability keeps walks near their source: each node's
        // top-1 is itself, so reverse top-1 of q is exactly {q}.
        let r = engine.query(NodeId(3), 1).unwrap();
        assert_eq!(r.nodes(), &[3]);
    }

    #[test]
    fn rejects_dangling_graph() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        let g = b.build(DanglingPolicy::Sink).unwrap();
        // Sink policy repaired it: builds fine.
        assert!(ReverseTopkEngine::builder(g).threads(1).max_k(2).build().is_ok());
    }

    #[test]
    fn query_many_matches_individual_queries() {
        let mut engine = toy_engine();
        let batch = engine
            .query_many(
                &[(NodeId(0), 2), (NodeId(1), 2), (NodeId(2), 3)],
                &rtk_query::QueryOptions::default(),
            )
            .unwrap();
        assert_eq!(batch.len(), 3);
        let single = engine.query(NodeId(0), 2).unwrap();
        assert_eq!(batch[0].nodes(), single.nodes());
    }

    #[test]
    fn query_batch_matches_frozen_singles_in_order() {
        let mut engine = toy_engine();
        let queries: Vec<(NodeId, usize)> =
            (0..6u32).map(|u| (NodeId(u), 1 + (u as usize % 3))).collect();
        for threads in [1usize, 2, 4] {
            let opts = rtk_query::QueryOptions { query_threads: threads, ..Default::default() };
            let batch = engine.query_batch(&queries, &opts).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (i, &(q, k)) in queries.iter().enumerate() {
                let single = engine.query(q, k).unwrap();
                assert_eq!(batch[i].nodes(), single.nodes(), "i={i} threads={threads}");
                assert_eq!(batch[i].query(), q.0);
            }
        }
    }

    #[test]
    fn query_threads_knob_flows_through_builder() {
        let mut engine = ReverseTopkEngine::builder(toy())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .query_threads(4)
            .build()
            .unwrap();
        assert_eq!(engine.options().query_threads, 4);
        let r = engine.query(NodeId(0), 2).unwrap();
        assert_eq!(r.nodes(), &[0, 1, 4]);
    }

    #[test]
    fn cached_transition_survives_refresh() {
        let mut engine = toy_engine();
        let before = engine.proximities_to(NodeId(0)).unwrap();
        engine.refresh_transition_cache();
        let after = engine.proximities_to(NodeId(0)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn top_k_early_agrees_with_top_k_as_a_set() {
        let engine = toy_engine();
        for u in 0..6u32 {
            let mut exact: Vec<NodeId> =
                engine.top_k(NodeId(u), 2).unwrap().into_iter().map(|(v, _)| v).collect();
            let mut early: Vec<NodeId> =
                engine.top_k_early(NodeId(u), 2).unwrap().into_iter().map(|(v, _)| v).collect();
            exact.sort();
            early.sort();
            assert_eq!(exact, early, "u={u}");
        }
    }

    #[test]
    fn approximate_option_flows_through_facade() {
        let mut engine = toy_engine();
        let opts = rtk_query::QueryOptions { approximate: true, ..Default::default() };
        let approx = engine.query_with(NodeId(0), 2, &opts).unwrap();
        let exact = engine.query(NodeId(0), 2).unwrap();
        for u in approx.nodes() {
            assert!(exact.contains(*u));
        }
        assert_eq!(approx.stats().refine_iterations, 0);
    }

    #[test]
    fn sharded_engine_matches_unsharded_and_round_trips() {
        let mut single = toy_engine();
        let mut sharded = ReverseTopkEngine::builder(toy())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .shards(3)
            .build()
            .unwrap();
        assert_eq!(sharded.shard_count(), 3);
        let a = single.query(NodeId(0), 2).unwrap();
        let b = sharded.query(NodeId(0), 2).unwrap();
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.proximities(), b.proximities());

        // The engine snapshot carries the shard layout through save/load.
        let mut buf = Vec::new();
        sharded.save(&mut buf).unwrap();
        let mut loaded = ReverseTopkEngine::load(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(loaded.shard_count(), 3);
        assert_eq!(loaded.query(NodeId(0), 2).unwrap().nodes(), a.nodes());

        // Resharding is a pure layout change.
        loaded.reshard(1);
        assert_eq!(loaded.shard_count(), 1);
        assert_eq!(loaded.query(NodeId(0), 2).unwrap().nodes(), a.nodes());
    }

    #[test]
    fn save_load_round_trip() {
        let mut engine = toy_engine();
        let before = engine.query(NodeId(0), 2).unwrap();
        let mut buf = Vec::new();
        engine.save(&mut buf).unwrap();
        let mut loaded = ReverseTopkEngine::load(std::io::Cursor::new(buf)).unwrap();
        let after = loaded.query(NodeId(0), 2).unwrap();
        assert_eq!(before.nodes(), after.nodes());
        assert_eq!(loaded.node_count(), 6);
    }

    #[test]
    fn from_parts_rejects_mismatch() {
        let engine = toy_engine();
        let mut buf = Vec::new();
        rtk_index::storage::save(engine.index(), &mut buf).unwrap();
        let index = rtk_index::storage::load(std::io::Cursor::new(buf)).unwrap();
        let small = GraphBuilder::from_edges(2, &[(0, 1), (1, 0)], DanglingPolicy::Error).unwrap();
        assert!(ReverseTopkEngine::from_parts(small, index).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let mut engine = toy_engine();
        let err = engine.query(NodeId(9), 2).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = engine.query(NodeId(0), 99).unwrap_err();
        assert!(err.to_string().contains("99"));
    }
}
