//! The per-shard serving engine: graph + shared hubs + **one** index shard.
//!
//! A [`ShardEngine`] is what one multi-process backend owns: the full graph
//! (PMPN and BCA refinement walk the whole transition matrix) but only one
//! shard's node states — the memory that actually scales with the index.
//! Its [`ShardEngine::query_shard_frozen`] /
//! [`ShardEngine::query_shard_update`] answer
//! the shard-scoped slice of a reverse top-k query; a router merges the
//! slices of every shard into the full answer (see `rtk-server`'s `router`
//! module), bitwise equal to a single-process [`crate::ReverseTopkEngine`].

use crate::error::EngineError;
use rtk_graph::{DiGraph, EdgeSplice, NodeId, TransitionKernel, TransitionMatrix, TransitionProbs};
use rtk_index::{
    storage, HubMatrix, IndexConfig, IndexShard, ShardMap, ShardSlice, UpdateEffect, UpdateRecord,
};
use rtk_query::{QueryEngine, QueryOptions, QueryResult};
use std::io::Write;
use std::ops::Range;

/// An engine serving exactly one shard of a sharded index.
///
/// Construct with [`ShardEngine::from_parts`] from a graph plus a
/// [`ShardSlice`] (loaded standalone via
/// [`rtk_index::storage::load_shard_slice`], or extracted from an in-memory
/// index via [`ShardSlice::from_index`]).
///
/// ```
/// use rtk_core::{ReverseTopkEngine, ShardEngine};
/// use rtk_core::index::ShardSlice;
/// use rtk_core::graph::NodeId;
///
/// // Build a 2-shard engine, then serve shard 0 standalone.
/// let graph = rtk_datasets::toy_graph();
/// let engine = ReverseTopkEngine::builder(graph.clone())
///     .max_k(3)
///     .hubs_per_direction(1)
///     .shards(2)
///     .build()
///     .unwrap();
/// let slice = ShardSlice::from_index(engine.index(), 0).unwrap();
/// let shard = ShardEngine::from_parts(graph, slice).unwrap();
/// assert_eq!(shard.shard_range(), 0..3);
///
/// // The shard-scoped slice of "reverse top-2 of node 0" ({0, 1, 4}
/// // globally) restricted to nodes 0..3 is {0, 1}.
/// let partial = shard
///     .query_shard_frozen(NodeId(0), 2, &Default::default())
///     .unwrap();
/// assert_eq!(partial.nodes(), &[0, 1]);
/// ```
pub struct ShardEngine {
    graph: DiGraph,
    /// Cached transition probabilities (the graph is immutable once owned).
    probs: TransitionProbs,
    /// Cached flat-CSR gather kernel paired with `probs`.
    kernel: TransitionKernel,
    config: IndexConfig,
    hub_matrix: HubMatrix,
    shard_map: ShardMap,
    shard: IndexShard,
    session: QueryEngine,
}

impl ShardEngine {
    /// Assembles a shard engine, validating that `graph` matches the
    /// slice's node count and has no dangling nodes.
    pub fn from_parts(graph: DiGraph, slice: ShardSlice) -> Result<Self, EngineError> {
        if graph.node_count() != slice.node_count() {
            return Err(EngineError::Query(rtk_query::QueryError::GraphMismatch {
                index_nodes: slice.node_count(),
                graph_nodes: graph.node_count(),
            }));
        }
        let dangling = graph.dangling_nodes();
        if let Some(&node) = dangling.first() {
            return Err(EngineError::Graph(rtk_graph::GraphError::DanglingNode {
                node,
                count: dangling.len(),
            }));
        }
        let probs = TransitionProbs::compute(&graph);
        let kernel = TransitionKernel::build(&graph, &probs);
        let ShardSlice { config, hub_matrix, shard_map, shard } = slice;
        let session = QueryEngine::from_parts(graph.node_count(), &hub_matrix, config.bca);
        Ok(Self { graph, probs, kernel, config, hub_matrix, shard_map, shard, session })
    }

    /// The cached transition view — `O(1)`, no allocation, kernel-backed.
    fn transition(&self) -> TransitionMatrix<'_> {
        TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel)
    }

    /// The underlying (full) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Total nodes in the graph / whole index — not just this shard.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Largest supported query `k` (the whole index's `K`).
    pub fn max_k(&self) -> usize {
        self.config.max_k
    }

    /// This shard's position in the shard map.
    pub fn shard_id(&self) -> usize {
        self.shard.id()
    }

    /// Global node-id range this engine owns and screens.
    pub fn shard_range(&self) -> Range<u32> {
        self.shard.range()
    }

    /// Number of nodes in this shard.
    pub fn shard_len(&self) -> usize {
        self.shard.len()
    }

    /// Heap bytes of this shard's states (drifts as refinements commit).
    pub fn shard_heap_bytes(&self) -> usize {
        self.shard.heap_bytes()
    }

    /// Total shards in the partition this shard belongs to.
    pub fn shard_count(&self) -> usize {
        self.shard_map.shard_count()
    }

    /// The full partition of the node id space.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard_map
    }

    /// The shard-scoped slice of a frozen reverse top-k query: PMPN over
    /// the whole graph, screening over this shard's range only. Refined
    /// states are dropped; the shard is not modified.
    pub fn query_shard_frozen(
        &self,
        q: NodeId,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, EngineError> {
        let (result, _) = self.query_shard_frozen_with_pmpn(q, k, options, None, false)?;
        Ok(result)
    }

    /// [`Self::query_shard_frozen`] with PMPN sharing: `pmpn` supplies a
    /// precomputed proximity-to-`q` vector so this backend can skip the
    /// solve, and `want_pmpn` asks for the locally solved vector back so a
    /// router can solve once per query and ship the result to the other
    /// shards. The returned vector is `None` unless `want_pmpn` and the
    /// exact solve actually ran (approx mode has no exact PMPN).
    pub fn query_shard_frozen_with_pmpn(
        &self,
        q: NodeId,
        k: usize,
        options: &QueryOptions,
        pmpn: Option<&[f64]>,
        want_pmpn: bool,
    ) -> Result<(QueryResult, Option<Vec<f64>>), EngineError> {
        let opts = QueryOptions { update_index: false, ..*options };
        let (result, _, pmpn_out) = self.session.query_shard_with_pmpn(
            &self.transition(),
            &self.hub_matrix,
            self.config.alpha(),
            self.config.max_k,
            &self.shard,
            q.0,
            k,
            &opts,
            pmpn,
            want_pmpn,
        )?;
        Ok((result, pmpn_out))
    }

    /// The shard-scoped slice of an update-mode reverse top-k query: like
    /// [`Self::query_shard_frozen`], but the refined private states commit
    /// back into this shard — the backend-local half of the cross-process
    /// commit merge (each backend owns its shard, so commits never race
    /// across processes).
    pub fn query_shard_update(
        &mut self,
        q: NodeId,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, EngineError> {
        let (result, _) = self.query_shard_update_with_pmpn(q, k, options, None, false)?;
        Ok(result)
    }

    /// [`Self::query_shard_update`] with PMPN sharing — see
    /// [`Self::query_shard_frozen_with_pmpn`].
    pub fn query_shard_update_with_pmpn(
        &mut self,
        q: NodeId,
        k: usize,
        options: &QueryOptions,
        pmpn: Option<&[f64]>,
        want_pmpn: bool,
    ) -> Result<(QueryResult, Option<Vec<f64>>), EngineError> {
        let opts = QueryOptions { update_index: true, ..*options };
        let (result, commits, pmpn_out) = self.session.query_shard_with_pmpn(
            &self.transition(),
            &self.hub_matrix,
            self.config.alpha(),
            self.config.max_k,
            &self.shard,
            q.0,
            k,
            &opts,
            pmpn,
            want_pmpn,
        )?;
        for (u, state) in commits {
            self.shard.commit_state(u, state);
        }
        Ok((result, pmpn_out))
    }

    /// Forward top-k RWR search (full graph — shard-independent).
    pub fn top_k(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, EngineError> {
        self.check_node(u)?;
        let transition = self.transition();
        let params = rtk_rwr::RwrParams::with_alpha(self.config.alpha());
        let top = rtk_query::baseline::top_k_rwr(&transition, u.0, k, &params);
        Ok(top.into_iter().map(|(v, p)| (NodeId(v), p)).collect())
    }

    /// Early-terminating forward top-k search (full graph).
    pub fn top_k_early(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, f64)>, EngineError> {
        self.check_node(u)?;
        let transition = self.transition();
        let params = rtk_rwr::BcaParams {
            alpha: self.config.alpha(),
            propagation_threshold: 1e-7,
            residue_threshold: 0.0,
            max_iterations: 100_000,
        };
        let (top, _) = rtk_query::top_k_rwr_early(&transition, u.0, k, &params);
        Ok(top.into_iter().map(|(v, p)| (NodeId(v), p)).collect())
    }

    /// Inserts the edge `from → to` (or accumulates weight onto an existing
    /// one), splices the transition caches, recomputes the affected hub
    /// columns of the process-local hub matrix, and rebuilds the affected
    /// states *this shard owns*. Every backend applying the same update
    /// performs the identical hub recompute and disjoint per-node work, so
    /// the union over shards equals a full-index
    /// [`crate::ReverseTopkEngine::add_edge`].
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        weight: f64,
    ) -> Result<UpdateEffect, EngineError> {
        let splice = self.graph.add_edge(from.0, to.0, weight)?;
        Ok(self.apply_splice(&splice))
    }

    /// Removes the edge `from → to` entirely; otherwise as
    /// [`Self::add_edge`].
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<UpdateEffect, EngineError> {
        let splice = self.graph.remove_edge(from.0, to.0)?;
        Ok(self.apply_splice(&splice))
    }

    /// Replays a decoded `RTKULOG1` update log in order against this shard
    /// (see [`crate::ReverseTopkEngine::replay_updates`]).
    pub fn replay_updates(
        &mut self,
        records: &[UpdateRecord],
    ) -> Result<UpdateEffect, EngineError> {
        let mut total = UpdateEffect::default();
        for record in records {
            let effect = match *record {
                UpdateRecord::AddEdge { from, to, weight } => {
                    self.add_edge(NodeId(from), NodeId(to), weight)?
                }
                UpdateRecord::RemoveEdge { from, to } => {
                    self.remove_edge(NodeId(from), NodeId(to))?
                }
            };
            total.merge(effect);
        }
        Ok(total)
    }

    fn apply_splice(&mut self, splice: &EdgeSplice) -> UpdateEffect {
        self.probs.apply_splice(&self.graph, splice);
        self.kernel.apply_splice(&self.graph, &self.probs, splice);
        let transition =
            TransitionMatrix::with_probs_and_kernel(&self.graph, &self.probs, &self.kernel);
        rtk_index::apply_update_sharded(
            &transition,
            &self.config,
            &mut self.hub_matrix,
            &mut self.shard,
            splice.from,
        )
    }

    /// A stable digest (FNV-1a 64) of the exact `RTKSHRD1` bytes
    /// [`Self::save_shard`] would write. Replicas of the same shard answer
    /// identically whenever their digests match — the router's cheap
    /// convergence check after an update stream.
    pub fn index_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        self.save_shard(&mut bytes).expect("in-memory shard serialization cannot fail");
        crate::digest::fnv1a64(&bytes)
    }

    /// Serializes this shard's current (possibly refined) states as a
    /// self-contained `RTKSHRD1` section — the shard backend's persistence
    /// unit (loadable by [`rtk_index::storage::load_shard`] or re-assembled
    /// under a manifest).
    pub fn save_shard<W: Write>(&self, writer: W) -> Result<(), EngineError> {
        storage::save_shard(&self.shard, self.node_count(), self.config.max_k, writer)?;
        Ok(())
    }

    fn check_node(&self, u: NodeId) -> Result<(), EngineError> {
        if u.index() >= self.graph.node_count() {
            return Err(EngineError::Query(rtk_query::QueryError::NodeOutOfRange {
                node: u.0,
                node_count: self.graph.node_count(),
            }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReverseTopkEngine;

    fn sharded_engine(shards: usize) -> ReverseTopkEngine {
        ReverseTopkEngine::builder(rtk_datasets::toy_graph())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .shards(shards)
            .build()
            .unwrap()
    }

    #[test]
    fn shard_engines_cover_the_full_answer() {
        let mut whole = sharded_engine(1);
        let reference = whole.query(NodeId(0), 2).unwrap();
        let sharded = sharded_engine(3);
        let mut merged = Vec::new();
        for sid in 0..3 {
            let slice = ShardSlice::from_index(sharded.index(), sid).unwrap();
            let backend = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
            assert_eq!(backend.shard_id(), sid);
            assert_eq!(backend.shard_count(), 3);
            let partial =
                backend.query_shard_frozen(NodeId(0), 2, &QueryOptions::default()).unwrap();
            merged.extend_from_slice(partial.nodes());
        }
        assert_eq!(merged, reference.nodes());
    }

    #[test]
    fn update_mode_commits_into_the_owned_shard() {
        let sharded = sharded_engine(2);
        let slice = ShardSlice::from_index(sharded.index(), 1).unwrap();
        let mut backend = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
        let before = backend.shard_heap_bytes();
        // Node 3 (paper running example) needs refinement for q=0, k=2 and
        // lives in shard 1 of a 2-way split (nodes 3..6).
        assert!(backend.shard_range().contains(&3));
        let r1 = backend.query_shard_update(NodeId(0), 2, &QueryOptions::default()).unwrap();
        let r2 = backend.query_shard_frozen(NodeId(0), 2, &QueryOptions::default()).unwrap();
        assert_eq!(r1.nodes(), r2.nodes());
        assert!(
            r2.stats().refine_iterations <= r1.stats().refine_iterations,
            "committed refinements must make the repeat cheaper or equal"
        );
        let _ = before; // heap size may or may not change on the toy graph
    }

    #[test]
    fn shard_section_round_trips_through_save() {
        let sharded = sharded_engine(2);
        let slice = ShardSlice::from_index(sharded.index(), 0).unwrap();
        let backend = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
        let mut buf = Vec::new();
        backend.save_shard(&mut buf).unwrap();
        let back =
            storage::load_shard(std::io::Cursor::new(buf), sharded.index().hub_matrix(), 6, 3)
                .unwrap();
        assert_eq!(back.states(), sharded.index().shards()[0].states());
    }

    #[test]
    fn rejects_mismatched_graph_and_bad_nodes() {
        let sharded = sharded_engine(2);
        let slice = ShardSlice::from_index(sharded.index(), 0).unwrap();
        let small = rtk_graph::GraphBuilder::from_edges(
            2,
            &[(0, 1), (1, 0)],
            rtk_graph::DanglingPolicy::Error,
        )
        .unwrap();
        assert!(ShardEngine::from_parts(small, slice.clone()).is_err());

        let backend = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
        assert!(backend.query_shard_frozen(NodeId(9), 2, &QueryOptions::default()).is_err());
        assert!(backend.top_k(NodeId(9), 2).is_err());
    }
}
