//! Stable index digests for replica-convergence checks.

/// FNV-1a 64-bit over `bytes`. Stable across platforms and releases — the
/// digest is compared across processes and over the wire (`stats`), so it
/// must not depend on `std`'s randomized hashers.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn is_sensitive_to_single_byte_changes() {
        let a = fnv1a64(&[0u8; 64]);
        let mut buf = [0u8; 64];
        buf[63] = 1;
        assert_ne!(a, fnv1a64(&buf));
    }
}
