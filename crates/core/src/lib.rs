//! High-level facade for reverse top-k RWR search.
//!
//! [`ReverseTopkEngine`] owns a graph and its offline index and exposes the
//! paper's operations behind a minimal API:
//!
//! ```
//! use rtk_core::prelude::*;
//!
//! // The 6-node toy graph of the paper's Figure 1 (0-based ids).
//! let graph = GraphBuilder::from_edges(
//!     6,
//!     &[
//!         (0, 1), (0, 3), (0, 5),
//!         (1, 0), (1, 2),
//!         (2, 0), (2, 1),
//!         (3, 1), (3, 4),
//!         (4, 1),
//!         (5, 1), (5, 3),
//!     ],
//!     DanglingPolicy::SelfLoop,
//! )
//! .unwrap();
//!
//! let mut engine = ReverseTopkEngine::builder(graph)
//!     .max_k(3)
//!     .hubs_per_direction(1)
//!     .build()
//!     .unwrap();
//!
//! // Reverse top-2 of node 0: who ranks node 0 among their 2 closest?
//! let result = engine.query(NodeId(0), 2).unwrap();
//! assert_eq!(result.nodes(), &[0, 1, 4]);
//! ```
//!
//! The lower layers remain fully public for power users:
//! [`rtk_graph`] (graphs + generators), [`rtk_rwr`] (solvers),
//! [`rtk_index`] (the LBI index), [`rtk_query`] (Alg. 4 + baselines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod engine;
pub mod error;
pub mod shard_engine;

pub use digest::fnv1a64;
pub use engine::{EngineBuilder, ReverseTopkEngine};
pub use error::EngineError;
pub use rtk_index::{UpdateEffect, UpdateRecord};
pub use shard_engine::ShardEngine;

// Re-export the layer crates under stable names.
pub use rtk_graph as graph;
pub use rtk_index as index;
pub use rtk_query as query;
pub use rtk_rwr as rwr;
pub use rtk_sparse as sparse;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use crate::engine::{EngineBuilder, ReverseTopkEngine};
    pub use crate::error::EngineError;
    pub use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder, NodeId};
    pub use rtk_index::{HubSelection, HubSolver, IndexConfig};
    pub use rtk_query::{BoundMode, QueryOptions, QueryResult};
    pub use rtk_rwr::{BcaParams, RwrParams};
}
