//! Unified error type for the facade.

use rtk_graph::GraphError;
use rtk_index::IndexError;
use rtk_query::QueryError;

/// Any failure surfaced by [`crate::ReverseTopkEngine`].
#[derive(Debug)]
pub enum EngineError {
    /// Graph construction or validation failed (e.g. dangling nodes with a
    /// non-repairing policy).
    Graph(GraphError),
    /// Index configuration/build/persistence failed.
    Index(IndexError),
    /// Query validation failed.
    Query(QueryError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Index(e) => write!(f, "index error: {e}"),
            EngineError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            EngineError::Index(e) => Some(e),
            EngineError::Query(e) => Some(e),
        }
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> Self {
        EngineError::Index(e)
    }
}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::Query(e)
    }
}
