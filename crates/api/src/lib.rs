//! # rtk-api — the reverse top-k request surface
//!
//! One crate defines *what* can be asked of a reverse top-k service and
//! what comes back; everything else decides *where* the answer is
//! computed:
//!
//! * [`model`] — the request/response vocabulary of the `RTKWIRE1`
//!   protocol (requests, results, stats snapshots) without any bytes or
//!   sockets;
//! * [`service`] — the [`RtkService`] trait covering the full surface
//!   (`reverse_topk`, `topk`, `batch`, `stats`, `persist`, `shutdown`,
//!   plus the shard-scoped `shard_reverse_topk`), implemented here for the
//!   in-process [`rtk_core::ReverseTopkEngine`] and
//!   [`rtk_core::ShardEngine`], and in `rtk-server` for the remote
//!   `Client` and the router's backend aggregate.
//!
//! ```
//! use rtk_api::RtkService;
//! use rtk_core::ReverseTopkEngine;
//!
//! // Code written against the trait serves local and remote identically.
//! fn first_fan(svc: &mut impl RtkService) -> u32 {
//!     svc.reverse_topk(0, 2, false).unwrap().nodes[0]
//! }
//!
//! let mut engine = ReverseTopkEngine::builder(rtk_datasets::toy_graph())
//!     .max_k(3)
//!     .hubs_per_direction(1)
//!     .build()
//!     .unwrap();
//! assert_eq!(first_fan(&mut engine), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod service;

pub use model::{
    ApproxParams, EngineInfo, KindLatency, Request, RequestKind, Response, StatsSnapshot,
    WireApproxStats, WireQueryResult, WireShardResult, WireTopk, WireUpdateResult,
};
pub use rtk_obs::TraceSpan;
pub use service::{dispatch_request, to_wire, RtkService, ServiceError, ServiceResult};
