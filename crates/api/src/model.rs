//! The request/response model of the reverse top-k serving surface.
//!
//! These types are the *semantic* layer of the `RTKWIRE1` protocol: every
//! request a service can receive, every response it can produce, and the
//! data shapes they carry. The byte-level codec (framing, payload
//! encoding) lives in `rtk-server`'s `wire` module; everything that is not
//! about bytes lives here so local engines, remote clients, and routers
//! can share one vocabulary through [`crate::service::RtkService`].

pub use rtk_core::query::ApproxParams;

use rtk_obs::TraceSpan;
use rtk_sparse::codec::{self, DecodeError};
use std::io::{Read, Write};

/// Protocol-level cap on queries per batch request. Bounds the work a
/// single frame can demand *before* the server executes anything (a 16 MiB
/// frame could otherwise legally declare ~2M queries whose response could
/// never fit back through the frame limit).
pub const MAX_BATCH_QUERIES: u64 = 65_536;

/// Cap on a `persist` request's path length in bytes.
pub const MAX_PERSIST_PATH_BYTES: u64 = 4096;

/// Cap on the auth-token field of a request.
pub const MAX_AUTH_TOKEN_BYTES: u64 = 1024;

/// Response status: the request succeeded.
pub const STATUS_OK: u32 = 0;
/// The request could not be parsed or violated framing limits.
pub const STATUS_PROTOCOL_ERROR: u32 = 1;
/// The engine rejected or failed the request.
pub const STATUS_ENGINE_ERROR: u32 = 2;
/// The server is at its connection cap or the connection is at its
/// pipeline-depth cap; retry later (backpressure).
pub const STATUS_BUSY: u32 = 3;
/// The request's auth token did not match the server's `--auth-token`.
pub const STATUS_UNAUTHORIZED: u32 = 4;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One reverse top-k query. `update` selects the paper's update mode
    /// (refinements commit back into the shared index, serialized through
    /// the write lock); otherwise the query runs frozen and concurrently.
    ReverseTopk {
        /// Query node id.
        q: u32,
        /// Result set size.
        k: u32,
        /// Commit refinements back into the index.
        update: bool,
        /// Ask the service to attach a span tree to the answer (wire v6).
        /// Tracing is observational only: a traced and an untraced run of
        /// the same query return bitwise-identical results.
        trace: bool,
        /// Run the approximate screen with this error budget (wire v8).
        /// `None` (or an inactive ε) answers exactly; the encoded frame of
        /// an absent knob is byte-identical to its wire-v7 shape.
        approx: Option<ApproxParams>,
    },
    /// Forward top-k proximity search from `u`.
    Topk {
        /// Source node id.
        u: u32,
        /// Result set size.
        k: u32,
        /// Use the early-terminating BPA-style search.
        early: bool,
    },
    /// Many independent frozen reverse top-k queries in one round-trip.
    Batch {
        /// `(q, k)` pairs, answered in order.
        queries: Vec<(u32, u32)>,
    },
    /// Server metrics + engine info.
    Stats,
    /// Graceful shutdown: in-flight requests finish, then the server exits.
    Shutdown,
    /// Flush the current (refined) engine snapshot to `path` on the
    /// *server's* filesystem, under the write lock, so the paper's update
    /// mode becomes durable on demand.
    Persist {
        /// Server-side destination path.
        path: String,
    },
    /// The shard-scoped slice of one reverse top-k query: screen only the
    /// receiving backend's shard range. Sent by the router to its
    /// per-shard backends; a backend started with `--shard-only` answers
    /// with [`Response::ShardReverseTopk`]. The partial results of every
    /// shard, concatenated in shard order with counters summed, equal the
    /// single-process answer bitwise.
    ShardReverseTopk {
        /// Query node id (global).
        q: u32,
        /// Result set size.
        k: u32,
        /// Commit refinements into the backend's shard (update mode).
        update: bool,
        /// Attach the shard's span tree to the partial answer (wire v6) so
        /// the router can stitch it into the full query trace.
        trace: bool,
        /// Run the approximate screen with this error budget (wire v8),
        /// forwarded verbatim by the router so every shard classifies
        /// against the identical ε / walk budget / seed.
        approx: Option<ApproxParams>,
        /// A precomputed PMPN vector (`p_u(q)` for every global node u),
        /// shipped by the router so only one backend pays the solve
        /// (wire v8). Every backend solves the identical full-graph
        /// system, so a shipped vector is bitwise-equal to a local solve.
        pmpn: Option<Vec<f64>>,
        /// Ask the backend to return its locally solved PMPN vector in the
        /// answer so the router can ship it to the remaining shards
        /// (wire v8). Ignored in approx mode (no exact solve runs).
        want_pmpn: bool,
    },
    /// Insert the edge `from → to` into the served graph, or accumulate
    /// `weight` onto an existing one, with targeted index repair (wire v7).
    /// An update mutates shared state, so the router routes it like
    /// update-mode queries: to every shard, pinned to each shard's stable
    /// replica owner.
    AddEdge {
        /// Edge tail.
        from: u32,
        /// Edge head.
        to: u32,
        /// Weight to add (finite, `> 0`).
        weight: f64,
    },
    /// Remove the edge `from → to` entirely (wire v7). Fails if the edge
    /// does not exist or removing it would leave `from` with no out-edges.
    RemoveEdge {
        /// Edge tail.
        from: u32,
        /// Edge head.
        to: u32,
    },
}

/// Request kinds tracked individually in metrics (indices into the
/// server-side counter array).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// [`Request::Ping`].
    Ping = 0,
    /// [`Request::ReverseTopk`].
    ReverseTopk = 1,
    /// [`Request::Topk`].
    Topk = 2,
    /// [`Request::Batch`].
    Batch = 3,
    /// [`Request::Stats`].
    Stats = 4,
    /// [`Request::Shutdown`].
    Shutdown = 5,
    /// [`Request::Persist`].
    Persist = 6,
    /// [`Request::ShardReverseTopk`].
    ShardReverseTopk = 7,
    /// [`Request::AddEdge`].
    AddEdge = 8,
    /// [`Request::RemoveEdge`].
    RemoveEdge = 9,
}

/// Number of distinct [`RequestKind`]s.
pub const REQUEST_KINDS: usize = 10;

impl RequestKind {
    /// Every kind, in counter-array index order.
    pub const ALL: [RequestKind; REQUEST_KINDS] = [
        RequestKind::Ping,
        RequestKind::ReverseTopk,
        RequestKind::Topk,
        RequestKind::Batch,
        RequestKind::Stats,
        RequestKind::Shutdown,
        RequestKind::Persist,
        RequestKind::ShardReverseTopk,
        RequestKind::AddEdge,
        RequestKind::RemoveEdge,
    ];

    /// The stable snake_case name used in stats JSON and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Ping => "ping",
            RequestKind::ReverseTopk => "reverse_topk",
            RequestKind::Topk => "topk",
            RequestKind::Batch => "batch",
            RequestKind::Stats => "stats",
            RequestKind::Shutdown => "shutdown",
            RequestKind::Persist => "persist",
            RequestKind::ShardReverseTopk => "shard_reverse_topk",
            RequestKind::AddEdge => "add_edge",
            RequestKind::RemoveEdge => "remove_edge",
        }
    }
}

impl Request {
    /// The metrics kind of this request.
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Ping => RequestKind::Ping,
            Request::ReverseTopk { .. } => RequestKind::ReverseTopk,
            Request::Topk { .. } => RequestKind::Topk,
            Request::Batch { .. } => RequestKind::Batch,
            Request::Stats => RequestKind::Stats,
            Request::Shutdown => RequestKind::Shutdown,
            Request::Persist { .. } => RequestKind::Persist,
            Request::ShardReverseTopk { .. } => RequestKind::ShardReverseTopk,
            Request::AddEdge { .. } => RequestKind::AddEdge,
            Request::RemoveEdge { .. } => RequestKind::RemoveEdge,
        }
    }
}

/// How the approximate screen classified a query's candidates (wire v8).
/// Attached to an answer only when the query ran with an active
/// [`ApproxParams`]; exact answers carry nothing and cost zero bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireApproxStats {
    /// Candidates decided from the bidirectional estimate (no exact
    /// refinement ran to completion for them).
    pub estimated: u64,
    /// Candidates inside the ε-band that fell back to exact refinement.
    pub exact_refined: u64,
    /// Forward walks simulated by the estimator.
    pub walks: u64,
}

/// One reverse top-k answer with its server-side diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct WireQueryResult {
    /// Echo of the query node.
    pub query: u32,
    /// Echo of `k`.
    pub k: u32,
    /// Result nodes in ascending id order.
    pub nodes: Vec<u32>,
    /// `p_u(q)` per result node (bitwise-exact f64s).
    pub proximities: Vec<f64>,
    /// Nodes surviving the lower-bound prune.
    pub candidates: u64,
    /// Candidates confirmed by their first upper-bound check.
    pub hits: u64,
    /// Candidates that needed refinement.
    pub refined_nodes: u64,
    /// Total BCA refinement iterations.
    pub refine_iterations: u64,
    /// Server-side wall time for this query, seconds.
    pub server_seconds: f64,
    /// Span tree for this query, present only when the request asked for
    /// tracing (wire v6). `None` costs zero bytes on the wire; batch
    /// answers never carry traces.
    pub trace: Option<TraceSpan>,
    /// Approximate-screen counters, present only when the query ran with
    /// an active approx knob (wire v8).
    pub approx: Option<WireApproxStats>,
}

/// One backend's shard-scoped slice of a reverse top-k answer.
#[derive(Clone, Debug, PartialEq)]
pub struct WireShardResult {
    /// The answering shard's position in the shard map.
    pub shard_id: u32,
    /// First global node id the shard screened.
    pub node_lo: u32,
    /// One past the last global node id the shard screened.
    pub node_hi: u32,
    /// The partial answer: result nodes within `[node_lo, node_hi)` and the
    /// shard's own counter statistics.
    pub result: WireQueryResult,
    /// The backend's locally solved PMPN vector, returned only when the
    /// request set `want_pmpn` and the exact solve actually ran (wire v8).
    pub pmpn: Option<Vec<f64>>,
}

/// The outcome of one applied edge update (wire v7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireUpdateResult {
    /// Node states the targeted invalidation recomputed (the service's
    /// owned subset: the whole affected set on a full engine, the
    /// shard-owned part on a shard backend, the sum over shards on a
    /// router).
    pub recomputed_states: u64,
    /// Hub columns recomputed.
    pub recomputed_hubs: u64,
    /// FNV-1a 64 digest of the service's serialized post-update index.
    /// Replicas that applied the same update stream must report the same
    /// digest — the router's convergence check. A router reports the
    /// digest of the concatenated per-shard digests, in shard order.
    pub index_digest: u64,
}

/// A forward top-k answer.
#[derive(Clone, Debug, PartialEq)]
pub struct WireTopk {
    /// Echo of the source node.
    pub node: u32,
    /// Echo of `k`.
    pub k: u32,
    /// Result nodes, best first.
    pub nodes: Vec<u32>,
    /// Proximity (or lower bound, in early mode) per result node.
    pub scores: Vec<f64>,
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::ReverseTopk`].
    ReverseTopk(WireQueryResult),
    /// Answer to [`Request::Topk`].
    Topk(WireTopk),
    /// Answer to [`Request::Batch`], in request order.
    Batch(Vec<WireQueryResult>),
    /// Answer to [`Request::Stats`]. Boxed: the per-kind latency tail
    /// makes the snapshot by far the largest response payload.
    Stats(Box<StatsSnapshot>),
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// Answer to [`Request::Persist`]: bytes written to the snapshot.
    Persisted {
        /// Size of the flushed snapshot file in bytes.
        bytes: u64,
    },
    /// Answer to [`Request::ShardReverseTopk`].
    ShardReverseTopk(WireShardResult),
    /// Answer to [`Request::AddEdge`] / [`Request::RemoveEdge`] (wire v7).
    Updated(WireUpdateResult),
    /// The request failed; `code` is one of the `STATUS_*` constants.
    Error {
        /// `STATUS_PROTOCOL_ERROR`, `STATUS_ENGINE_ERROR`, `STATUS_BUSY`,
        /// or `STATUS_UNAUTHORIZED`.
        code: u32,
        /// Human-readable cause.
        message: String,
    },
}

/// Static facts about the served engine, folded into every snapshot.
#[derive(Clone, Copy, Debug)]
pub struct EngineInfo {
    /// Node count of the served graph.
    pub nodes: u64,
    /// Edge count of the served graph.
    pub edges: u64,
    /// Largest `k` the index supports.
    pub max_k: u64,
    /// Worker threads the server runs (`0` for an in-process service).
    pub workers: u32,
    /// First global node id this process screens (`0` unless shard-only).
    pub shard_lo: u64,
    /// One past the last global node id this process screens (the node
    /// count unless shard-only).
    pub shard_hi: u64,
    /// FNV-1a 64 digest of the serialized index this service currently
    /// holds (wire v7) — see [`WireUpdateResult::index_digest`].
    pub index_digest: u64,
}

/// Latency summary for one request kind (wire v6). Splitting the global
/// histogram per kind keeps `ping` round-trips from diluting the
/// `reverse_topk` tail the router's hedge-delay quantile is based on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KindLatency {
    /// Observations for this kind.
    pub count: u64,
    /// Mean latency, seconds.
    pub mean_seconds: f64,
    /// Median latency (bucket upper edge), seconds.
    pub p50_seconds: f64,
    /// 95th percentile latency, seconds.
    pub p95_seconds: f64,
    /// 99th percentile latency, seconds.
    pub p99_seconds: f64,
    /// Largest observed latency, seconds.
    pub max_seconds: f64,
}

/// A point-in-time metrics report, encodable over the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Completed `ping` requests.
    pub ping: u64,
    /// Completed `reverse_topk` requests.
    pub reverse_topk: u64,
    /// Completed `topk` requests.
    pub topk: u64,
    /// Completed `batch` requests.
    pub batch: u64,
    /// Completed `stats` requests.
    pub stats: u64,
    /// Accepted `shutdown` requests.
    pub shutdown: u64,
    /// Completed `persist` requests.
    pub persist: u64,
    /// Completed shard-scoped `shard_reverse_topk` requests.
    pub shard_reverse_topk: u64,
    /// Applied `add_edge` updates (wire v7).
    pub add_edge: u64,
    /// Applied `remove_edge` updates (wire v7).
    pub remove_edge: u64,
    /// Malformed frames / requests observed.
    pub protocol_errors: u64,
    /// Requests the engine rejected or failed.
    pub engine_errors: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Connections refused at the `max_connections` cap (backpressure).
    pub rejected_connections: u64,
    /// Requests rejected because their auth token did not match.
    pub auth_failures: u64,
    /// Router only: backend replicas currently marked unhealthy (`0` on a
    /// plain server). Unhealthy replicas are probed in the background and
    /// re-admitted on recovery; a shard keeps answering as long as one of
    /// its replicas is healthy.
    pub unhealthy_backends: u64,
    /// Router only: shard calls that fired a second replica because the
    /// first had not answered within the hedge delay (wire v5).
    pub hedged_requests: u64,
    /// Router only: shard calls transparently retried on another replica
    /// after the first replica failed (wire v5).
    pub failovers: u64,
    /// Peak number of requests simultaneously in flight (queued + being
    /// executed) since start — the pipelining high-water mark (wire v4).
    pub inflight_peak: u64,
    /// Requests answered with a `busy` frame because their connection was
    /// at the `max_inflight` pipeline-depth cap (wire v4).
    pub inflight_rejections: u64,
    /// Observations in the latency histogram.
    pub latency_count: u64,
    /// Mean request latency, seconds.
    pub mean_seconds: f64,
    /// Median request latency (bucket upper edge), seconds.
    pub p50_seconds: f64,
    /// 95th percentile request latency, seconds.
    pub p95_seconds: f64,
    /// 99th percentile request latency, seconds.
    pub p99_seconds: f64,
    /// Largest observed request latency, seconds.
    pub max_seconds: f64,
    /// Node count of the served graph.
    pub nodes: u64,
    /// Edge count of the served graph.
    pub edges: u64,
    /// Largest `k` the index supports.
    pub max_k: u64,
    /// Worker threads the server runs.
    pub workers: u32,
    /// First global node id this process screens (`0` unless shard-only).
    pub shard_lo: u64,
    /// One past the last global node id this process screens.
    pub shard_hi: u64,
    /// FNV-1a 64 digest of the serialized index currently held (wire v7):
    /// bitwise replica convergence, checkable with one `stats` round-trip.
    pub index_digest: u64,
    /// Nodes per index shard (length = shard count).
    pub shard_nodes: Vec<u64>,
    /// Heap bytes per index shard, sampled at snapshot time (refinement
    /// drift included).
    pub shard_bytes: Vec<u64>,
    /// Latency summary per request kind, indexed by [`RequestKind`]
    /// (wire v6). The aggregate fields above merge all kinds.
    pub kind_latency: [KindLatency; REQUEST_KINDS],
    /// Reverse top-k queries answered through the approximate screen
    /// (wire v8; part of the versioned stats tail).
    pub approx_queries: u64,
    /// Candidates decided from bidirectional estimates across all approx
    /// queries (wire v8).
    pub approx_estimated: u64,
    /// Candidates that fell back to exact refinement inside the ε-band
    /// across all approx queries (wire v8).
    pub approx_exact_refined: u64,
    /// Forward walks simulated by approx queries (wire v8).
    pub approx_walks: u64,
}

impl StatsSnapshot {
    /// An all-zero snapshot over `engine` facts — what an in-process
    /// service (no server in front, hence no traffic counters) reports.
    pub fn local(engine: EngineInfo, shard_nodes: Vec<u64>, shard_bytes: Vec<u64>) -> Self {
        Self {
            uptime_seconds: 0.0,
            ping: 0,
            reverse_topk: 0,
            topk: 0,
            batch: 0,
            stats: 0,
            shutdown: 0,
            persist: 0,
            shard_reverse_topk: 0,
            add_edge: 0,
            remove_edge: 0,
            protocol_errors: 0,
            engine_errors: 0,
            connections: 0,
            rejected_connections: 0,
            auth_failures: 0,
            unhealthy_backends: 0,
            hedged_requests: 0,
            failovers: 0,
            inflight_peak: 0,
            inflight_rejections: 0,
            latency_count: 0,
            mean_seconds: 0.0,
            p50_seconds: 0.0,
            p95_seconds: 0.0,
            p99_seconds: 0.0,
            max_seconds: 0.0,
            nodes: engine.nodes,
            edges: engine.edges,
            max_k: engine.max_k,
            workers: engine.workers,
            shard_lo: engine.shard_lo,
            shard_hi: engine.shard_hi,
            index_digest: engine.index_digest,
            shard_nodes,
            shard_bytes,
            kind_latency: [KindLatency::default(); REQUEST_KINDS],
            approx_queries: 0,
            approx_estimated: 0,
            approx_exact_refined: 0,
            approx_walks: 0,
        }
    }

    /// Total completed requests across all kinds.
    pub fn total_requests(&self) -> u64 {
        self.ping
            + self.reverse_topk
            + self.topk
            + self.batch
            + self.stats
            + self.shutdown
            + self.persist
            + self.shard_reverse_topk
            + self.add_edge
            + self.remove_edge
    }

    /// Number of index shards the server reports.
    pub fn shard_count(&self) -> usize {
        self.shard_nodes.len()
    }

    /// Renders the snapshot as one JSON object — the shared serializer
    /// behind `rtk remote stats --json` and the bench harness's machine-
    /// readable reports. Per-kind latency appears under `kind_latency`,
    /// keyed by [`RequestKind::name`].
    pub fn to_json(&self) -> rtk_obs::Json {
        use rtk_obs::Json;
        let field = |k: &str, v: Json| (k.to_string(), v);
        let u64s = |vs: &[u64]| Json::Arr(vs.iter().map(|&v| Json::U64(v)).collect());
        let kinds = RequestKind::ALL
            .iter()
            .map(|&kind| {
                let l = &self.kind_latency[kind as usize];
                (
                    kind.name().to_string(),
                    Json::Obj(vec![
                        field("count", Json::U64(l.count)),
                        field("mean_seconds", Json::F64(l.mean_seconds)),
                        field("p50_seconds", Json::F64(l.p50_seconds)),
                        field("p95_seconds", Json::F64(l.p95_seconds)),
                        field("p99_seconds", Json::F64(l.p99_seconds)),
                        field("max_seconds", Json::F64(l.max_seconds)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            field("uptime_seconds", Json::F64(self.uptime_seconds)),
            field("ping", Json::U64(self.ping)),
            field("reverse_topk", Json::U64(self.reverse_topk)),
            field("topk", Json::U64(self.topk)),
            field("batch", Json::U64(self.batch)),
            field("stats", Json::U64(self.stats)),
            field("shutdown", Json::U64(self.shutdown)),
            field("persist", Json::U64(self.persist)),
            field("shard_reverse_topk", Json::U64(self.shard_reverse_topk)),
            field("add_edge", Json::U64(self.add_edge)),
            field("remove_edge", Json::U64(self.remove_edge)),
            field("total_requests", Json::U64(self.total_requests())),
            field("protocol_errors", Json::U64(self.protocol_errors)),
            field("engine_errors", Json::U64(self.engine_errors)),
            field("connections", Json::U64(self.connections)),
            field("rejected_connections", Json::U64(self.rejected_connections)),
            field("auth_failures", Json::U64(self.auth_failures)),
            field("unhealthy_backends", Json::U64(self.unhealthy_backends)),
            field("hedged_requests", Json::U64(self.hedged_requests)),
            field("failovers", Json::U64(self.failovers)),
            field("inflight_peak", Json::U64(self.inflight_peak)),
            field("inflight_rejections", Json::U64(self.inflight_rejections)),
            field("latency_count", Json::U64(self.latency_count)),
            field("mean_seconds", Json::F64(self.mean_seconds)),
            field("p50_seconds", Json::F64(self.p50_seconds)),
            field("p95_seconds", Json::F64(self.p95_seconds)),
            field("p99_seconds", Json::F64(self.p99_seconds)),
            field("max_seconds", Json::F64(self.max_seconds)),
            field("nodes", Json::U64(self.nodes)),
            field("edges", Json::U64(self.edges)),
            field("max_k", Json::U64(self.max_k)),
            field("workers", Json::U64(u64::from(self.workers))),
            field("shard_lo", Json::U64(self.shard_lo)),
            field("shard_hi", Json::U64(self.shard_hi)),
            field("index_digest", Json::U64(self.index_digest)),
            field("shard_nodes", u64s(&self.shard_nodes)),
            field("shard_bytes", u64s(&self.shard_bytes)),
            field("kind_latency", Json::Obj(kinds)),
            // Wire-v8 approximate-serving counters: appended after every
            // pre-existing key so v7-era consumers indexing by key (or by
            // prefix) keep parsing unchanged.
            field(
                "approx",
                Json::Obj(vec![
                    field("queries", Json::U64(self.approx_queries)),
                    field("estimated", Json::U64(self.approx_estimated)),
                    field("exact_refined", Json::U64(self.approx_exact_refined)),
                    field("walks", Json::U64(self.approx_walks)),
                ]),
            ),
        ])
    }

    /// Serializes the snapshot (fixed-width fields plus the per-shard size
    /// lists). The byte layout is part of the wire protocol — see
    /// `docs/FORMATS.md`.
    pub fn encode<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        codec::write_f64(w, self.uptime_seconds)?;
        for v in [
            self.ping,
            self.reverse_topk,
            self.topk,
            self.batch,
            self.stats,
            self.shutdown,
            self.persist,
            self.shard_reverse_topk,
            self.add_edge,
            self.remove_edge,
            self.protocol_errors,
            self.engine_errors,
            self.connections,
            self.rejected_connections,
            self.auth_failures,
            self.unhealthy_backends,
            self.hedged_requests,
            self.failovers,
            self.inflight_peak,
            self.inflight_rejections,
            self.latency_count,
        ] {
            codec::write_u64(w, v)?;
        }
        for v in [
            self.mean_seconds,
            self.p50_seconds,
            self.p95_seconds,
            self.p99_seconds,
            self.max_seconds,
        ] {
            codec::write_f64(w, v)?;
        }
        codec::write_u64(w, self.nodes)?;
        codec::write_u64(w, self.edges)?;
        codec::write_u64(w, self.max_k)?;
        codec::write_u32(w, self.workers)?;
        codec::write_u64(w, self.shard_lo)?;
        codec::write_u64(w, self.shard_hi)?;
        codec::write_u64(w, self.index_digest)?;
        // Per-shard sizes: one count, then (nodes, bytes) pairs.
        codec::write_u64(w, self.shard_nodes.len() as u64)?;
        for (&n, &b) in self.shard_nodes.iter().zip(&self.shard_bytes) {
            codec::write_u64(w, n)?;
            codec::write_u64(w, b)?;
        }
        // Per-kind latency summaries (wire v6): one count, then a fixed
        // record per kind in [`RequestKind::ALL`] order.
        codec::write_u64(w, REQUEST_KINDS as u64)?;
        for kl in &self.kind_latency {
            codec::write_u64(w, kl.count)?;
            for v in
                [kl.mean_seconds, kl.p50_seconds, kl.p95_seconds, kl.p99_seconds, kl.max_seconds]
            {
                codec::write_f64(w, v)?;
            }
        }
        // Versioned tail (wire v8): new counters are *appended*, never
        // spliced into the fixed prefix, so a parser written against the
        // v7 layout decodes everything above and simply stops early. The
        // tail declares its own version so a future v9 can extend it again.
        codec::write_u64(w, STATS_TAIL_V1)?;
        codec::write_u64(w, self.approx_queries)?;
        codec::write_u64(w, self.approx_estimated)?;
        codec::write_u64(w, self.approx_exact_refined)?;
        codec::write_u64(w, self.approx_walks)?;
        Ok(())
    }

    /// Deserializes a snapshot written by [`Self::encode`]. `max_shards`
    /// bounds the declared shard count (derive it from the payload size:
    /// each shard entry occupies 16 bytes).
    pub fn decode<R: Read>(r: &mut R, max_shards: u64) -> Result<Self, DecodeError> {
        let mut snap = Self {
            uptime_seconds: codec::read_f64(r)?,
            ping: codec::read_u64(r)?,
            reverse_topk: codec::read_u64(r)?,
            topk: codec::read_u64(r)?,
            batch: codec::read_u64(r)?,
            stats: codec::read_u64(r)?,
            shutdown: codec::read_u64(r)?,
            persist: codec::read_u64(r)?,
            shard_reverse_topk: codec::read_u64(r)?,
            add_edge: codec::read_u64(r)?,
            remove_edge: codec::read_u64(r)?,
            protocol_errors: codec::read_u64(r)?,
            engine_errors: codec::read_u64(r)?,
            connections: codec::read_u64(r)?,
            rejected_connections: codec::read_u64(r)?,
            auth_failures: codec::read_u64(r)?,
            unhealthy_backends: codec::read_u64(r)?,
            hedged_requests: codec::read_u64(r)?,
            failovers: codec::read_u64(r)?,
            inflight_peak: codec::read_u64(r)?,
            inflight_rejections: codec::read_u64(r)?,
            latency_count: codec::read_u64(r)?,
            mean_seconds: codec::read_f64(r)?,
            p50_seconds: codec::read_f64(r)?,
            p95_seconds: codec::read_f64(r)?,
            p99_seconds: codec::read_f64(r)?,
            max_seconds: codec::read_f64(r)?,
            nodes: codec::read_u64(r)?,
            edges: codec::read_u64(r)?,
            max_k: codec::read_u64(r)?,
            workers: codec::read_u32(r)?,
            shard_lo: codec::read_u64(r)?,
            shard_hi: codec::read_u64(r)?,
            index_digest: codec::read_u64(r)?,
            shard_nodes: Vec::new(),
            shard_bytes: Vec::new(),
            kind_latency: [KindLatency::default(); REQUEST_KINDS],
            approx_queries: 0,
            approx_estimated: 0,
            approx_exact_refined: 0,
            approx_walks: 0,
        };
        let shards = codec::check_len(codec::read_u64(r)?, max_shards, "shard count")?;
        snap.shard_nodes.reserve(shards.min(1 << 20));
        snap.shard_bytes.reserve(shards.min(1 << 20));
        for _ in 0..shards {
            snap.shard_nodes.push(codec::read_u64(r)?);
            snap.shard_bytes.push(codec::read_u64(r)?);
        }
        let kinds = codec::read_u64(r)?;
        if kinds != REQUEST_KINDS as u64 {
            return Err(DecodeError::Corrupt(format!(
                "stats snapshot declares {kinds} request kinds, expected {REQUEST_KINDS}"
            )));
        }
        for kl in snap.kind_latency.iter_mut() {
            *kl = KindLatency {
                count: codec::read_u64(r)?,
                mean_seconds: codec::read_f64(r)?,
                p50_seconds: codec::read_f64(r)?,
                p95_seconds: codec::read_f64(r)?,
                p99_seconds: codec::read_f64(r)?,
                max_seconds: codec::read_f64(r)?,
            };
        }
        // Versioned tail: absent on a v7-era snapshot (counters stay
        // zero), otherwise a tail version stamp followed by its counters.
        match read_u64_or_eof(r)? {
            None => {}
            Some(STATS_TAIL_V1) => {
                snap.approx_queries = codec::read_u64(r)?;
                snap.approx_estimated = codec::read_u64(r)?;
                snap.approx_exact_refined = codec::read_u64(r)?;
                snap.approx_walks = codec::read_u64(r)?;
            }
            Some(v) => {
                return Err(DecodeError::Corrupt(format!(
                    "stats snapshot tail declares unknown version {v}"
                )));
            }
        }
        Ok(snap)
    }
}

/// Version stamp of the first stats-snapshot tail (the wire-v8 approx
/// counters). Future tails bump this and append after the v1 fields.
pub const STATS_TAIL_V1: u64 = 1;

/// Reads one `u64`, mapping a clean end-of-stream (zero bytes available)
/// to `None` — how the decoder distinguishes "snapshot has no tail" from
/// a tail truncated mid-field, which stays an error.
fn read_u64_or_eof<R: Read>(r: &mut R) -> Result<Option<u64>, DecodeError> {
    let mut buf = [0u8; 8];
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(DecodeError::Corrupt("stats snapshot tail truncated".to_string())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DecodeError::Io(e)),
        }
    }
    Ok(Some(u64::from_le_bytes(buf)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_kinds_are_stable() {
        assert_eq!(Request::Ping.kind() as usize, 0);
        assert_eq!(Request::Shutdown.kind() as usize, 5);
        let shard = Request::ShardReverseTopk {
            q: 0,
            k: 1,
            update: false,
            trace: false,
            approx: None,
            pmpn: None,
            want_pmpn: false,
        };
        assert_eq!(shard.kind() as usize, 7);
        assert_eq!(Request::Stats.kind(), RequestKind::Stats);
        for (i, kind) in RequestKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i);
        }
        assert_eq!(RequestKind::ReverseTopk.name(), "reverse_topk");
    }

    #[test]
    fn local_snapshot_carries_engine_facts_and_zero_counters() {
        let info = EngineInfo {
            nodes: 10,
            edges: 20,
            max_k: 3,
            workers: 0,
            shard_lo: 0,
            shard_hi: 10,
            index_digest: 0xdead_beef,
        };
        let snap = StatsSnapshot::local(info, vec![5, 5], vec![64, 64]);
        assert_eq!(snap.total_requests(), 0);
        assert_eq!(snap.nodes, 10);
        assert_eq!(snap.shard_count(), 2);

        let mut buf = Vec::new();
        snap.encode(&mut buf).unwrap();
        let back = StatsSnapshot::decode(&mut Cursor::new(buf), 4).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn per_kind_latency_round_trips_and_count_is_enforced() {
        let info = EngineInfo {
            nodes: 10,
            edges: 20,
            max_k: 3,
            workers: 2,
            shard_lo: 0,
            shard_hi: 10,
            index_digest: 7,
        };
        let mut snap = StatsSnapshot::local(info, vec![10], vec![128]);
        snap.kind_latency[RequestKind::ReverseTopk as usize] = KindLatency {
            count: 7,
            mean_seconds: 0.002,
            p50_seconds: 0.001,
            p95_seconds: 0.004,
            p99_seconds: 0.005,
            max_seconds: 0.006,
        };
        let mut buf = Vec::new();
        snap.encode(&mut buf).unwrap();
        let back = StatsSnapshot::decode(&mut Cursor::new(buf.clone()), 4).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.kind_latency[1].count, 7);

        // A snapshot claiming the wrong number of kinds is corrupt, not
        // silently misaligned. The v8 tail (version stamp + 4 counters)
        // sits after the kind records.
        let tail_bytes = 8 * 5;
        let kinds_at = buf.len() - tail_bytes - 8 * (1 + REQUEST_KINDS * 6);
        buf[kinds_at..kinds_at + 8].copy_from_slice(&9u64.to_le_bytes());
        let err = StatsSnapshot::decode(&mut Cursor::new(buf), 4).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn approx_tail_round_trips_and_stays_backward_compatible() {
        let info = EngineInfo {
            nodes: 10,
            edges: 20,
            max_k: 3,
            workers: 2,
            shard_lo: 0,
            shard_hi: 10,
            index_digest: 7,
        };
        let mut snap = StatsSnapshot::local(info, vec![10], vec![128]);
        snap.approx_queries = 5;
        snap.approx_estimated = 40;
        snap.approx_exact_refined = 3;
        snap.approx_walks = 1280;
        let mut buf = Vec::new();
        snap.encode(&mut buf).unwrap();
        let back = StatsSnapshot::decode(&mut Cursor::new(buf.clone()), 4).unwrap();
        assert_eq!(back, snap);

        // A v7-era snapshot — same bytes with the tail chopped off —
        // still decodes, with the approx counters reading zero.
        buf.truncate(buf.len() - 8 * 5);
        let legacy = StatsSnapshot::decode(&mut Cursor::new(buf.clone()), 4).unwrap();
        assert_eq!(legacy.approx_queries, 0);
        assert_eq!(legacy.approx_walks, 0);
        assert_eq!(legacy.reverse_topk, snap.reverse_topk);

        // A truncated tail (some but not all counters) is corrupt.
        let mut cut = Vec::new();
        snap.encode(&mut cut).unwrap();
        cut.truncate(cut.len() - 8);
        let err = StatsSnapshot::decode(&mut Cursor::new(cut), 4).unwrap_err();
        assert!(matches!(err, DecodeError::Io(_)), "{err:?}");

        // An unknown tail version is corrupt, not silently misread.
        let mut bad = Vec::new();
        snap.encode(&mut bad).unwrap();
        let tail_at = bad.len() - 8 * 5;
        bad[tail_at..tail_at + 8].copy_from_slice(&99u64.to_le_bytes());
        let err = StatsSnapshot::decode(&mut Cursor::new(bad), 4).unwrap_err();
        assert!(matches!(err, DecodeError::Corrupt(_)), "{err:?}");

        // JSON exposes the tail as one nested object.
        let json = snap.to_json().render();
        assert!(json.contains("\"approx\""), "{json}");
        assert!(json.contains("\"walks\":1280"), "{json}");
    }
}
