//! [`RtkService`] — one trait for the full reverse top-k request surface.
//!
//! Every way of answering reverse top-k traffic implements this trait:
//!
//! * [`rtk_core::ReverseTopkEngine`] — the in-process engine (implemented
//!   here);
//! * [`rtk_core::ShardEngine`] — one shard of a partitioned index
//!   (implemented here; the full-index requests are clean
//!   [`ServiceError::Unsupported`] errors, exactly like a `--shard-only`
//!   server answers them);
//! * `rtk_server::Client` — a remote server or router over the wire;
//! * the router's backend aggregate inside `rtk-server`.
//!
//! Callers written against `&mut impl RtkService` (the CLI's `rtk remote`
//! commands, embedders, tests) cannot tell the flavors apart — the same
//! code drives a local engine or a sharded multi-process tier. Servers use
//! [`dispatch_request`] to map a decoded wire [`Request`] onto the trait,
//! so the request enum is matched in exactly one place outside the codec.

use crate::model::{
    EngineInfo, Request, RequestKind, Response, StatsSnapshot, WireApproxStats, WireQueryResult,
    WireShardResult, WireTopk, WireUpdateResult, STATUS_ENGINE_ERROR,
};
use rtk_core::graph::NodeId;
use rtk_core::query::{ApproxParams, QueryOptions, QueryResult};
use rtk_core::{ReverseTopkEngine, ShardEngine};

/// What a service call can fail with.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The engine rejected or failed the request (bad node id, `k` out of
    /// range, I/O failure while persisting, …).
    Engine(String),
    /// This service flavor cannot answer this request (e.g. a full
    /// `reverse_topk` against a shard-only backend).
    Unsupported(String),
    /// The transport to a remote service failed (connection refused,
    /// timeout, protocol violation).
    Transport(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Engine(m) => write!(f, "{m}"),
            ServiceError::Unsupported(m) => write!(f, "{m}"),
            ServiceError::Transport(m) => write!(f, "transport error: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Result alias for [`RtkService`] calls.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// The full reverse top-k request surface, independent of where the index
/// lives (in-process, one shard, behind a socket, or behind a router).
pub trait RtkService {
    /// Liveness probe. Local services are trivially alive; remote
    /// implementations round-trip a `ping` frame.
    fn ping(&mut self) -> ServiceResult<()> {
        Ok(())
    }

    /// One reverse top-k query; `update` commits refinements.
    fn reverse_topk(&mut self, q: u32, k: u32, update: bool) -> ServiceResult<WireQueryResult>;

    /// Like [`reverse_topk`](Self::reverse_topk), but asks the service to
    /// attach a span tree to the answer (wire v6). The default ignores the
    /// request and answers untraced — tracing is best-effort and may never
    /// change the result nodes or proximities.
    fn reverse_topk_traced(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
    ) -> ServiceResult<WireQueryResult> {
        self.reverse_topk(q, k, update)
    }

    /// Like [`reverse_topk`](Self::reverse_topk), but answers through the
    /// approximate screen with the given error budget (wire v8): the node
    /// set is guaranteed correct for every node farther than ε from its
    /// top-k decision boundary, and the reported proximities are the
    /// bidirectional estimates (within ε/2 of the truth). Services that
    /// cannot honor the contract must refuse, never silently degrade.
    fn reverse_topk_approx(
        &mut self,
        _q: u32,
        _k: u32,
        _update: bool,
        _trace: bool,
        _approx: ApproxParams,
    ) -> ServiceResult<WireQueryResult> {
        Err(ServiceError::Unsupported(
            "approximate serving is not supported by this service flavor".to_string(),
        ))
    }

    /// The shard-scoped slice of one reverse top-k query. Only shard
    /// backends answer it; everything else reports `Unsupported`.
    fn shard_reverse_topk(
        &mut self,
        _q: u32,
        _k: u32,
        _update: bool,
    ) -> ServiceResult<WireShardResult> {
        Err(ServiceError::Unsupported(
            "shard_reverse_topk requires a shard backend; send reverse_topk instead".to_string(),
        ))
    }

    /// Traced variant of [`shard_reverse_topk`](Self::shard_reverse_topk)
    /// (wire v6); the default answers untraced.
    fn shard_reverse_topk_traced(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
    ) -> ServiceResult<WireShardResult> {
        self.shard_reverse_topk(q, k, update)
    }

    /// The full wire-v8 shard query surface: the optional approx knob, an
    /// optional precomputed PMPN vector to screen against, and `want_pmpn`
    /// asking the locally solved vector back. The default delegates plain
    /// calls to the v7 methods and refuses anything it cannot honor — a
    /// service must never accept an approx knob or a shipped vector and
    /// silently ignore it.
    #[allow(clippy::too_many_arguments)]
    fn shard_reverse_topk_ext(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
        trace: bool,
        approx: Option<ApproxParams>,
        pmpn: Option<&[f64]>,
        want_pmpn: bool,
    ) -> ServiceResult<WireShardResult> {
        if approx.is_some() || pmpn.is_some() || want_pmpn {
            return Err(ServiceError::Unsupported(
                "wire-v8 shard query extensions are not supported by this service flavor"
                    .to_string(),
            ));
        }
        if trace {
            self.shard_reverse_topk_traced(q, k, update)
        } else {
            self.shard_reverse_topk(q, k, update)
        }
    }

    /// Inserts the edge `from -> to` with `weight` (accumulating onto an
    /// existing edge) and incrementally repairs the index (wire v7). The
    /// post-update index is bitwise-equal to a from-scratch rebuild of the
    /// updated graph, so every service flavor answers identically afterward.
    fn add_edge(&mut self, from: u32, to: u32, weight: f64) -> ServiceResult<WireUpdateResult>;

    /// Removes the edge `from -> to` and incrementally repairs the index
    /// (wire v7). Fails loudly if the edge does not exist or removal would
    /// leave `from` dangling.
    fn remove_edge(&mut self, from: u32, to: u32) -> ServiceResult<WireUpdateResult>;

    /// Forward top-k proximity search from `u`.
    fn topk(&mut self, u: u32, k: u32, early: bool) -> ServiceResult<WireTopk>;

    /// Many independent frozen reverse top-k queries, answered in order.
    fn batch(&mut self, queries: &[(u32, u32)]) -> ServiceResult<Vec<WireQueryResult>>;

    /// Service metrics + engine info. In-process services report engine
    /// facts with zeroed traffic counters ([`StatsSnapshot::local`]).
    fn stats(&mut self) -> ServiceResult<StatsSnapshot>;

    /// Flush the current (refined) state to `path` on the service's
    /// filesystem; returns the byte size written.
    fn persist(&mut self, path: &str) -> ServiceResult<u64>;

    /// Ask the service to shut down. A no-op for in-process services.
    fn shutdown(&mut self) -> ServiceResult<()>;
}

impl ServiceError {
    /// The wire status code this error maps to.
    pub fn status(&self) -> u32 {
        STATUS_ENGINE_ERROR
    }
}

/// Maps one decoded wire [`Request`] onto the matching [`RtkService`]
/// method and wraps the outcome as a [`Response`]. This is the single
/// request-enum dispatch point shared by every server flavor.
pub fn dispatch_request<S: RtkService + ?Sized>(
    svc: &mut S,
    request: Request,
) -> (RequestKind, Response) {
    let kind = request.kind();
    let result = match request {
        Request::Ping => svc.ping().map(|()| Response::Pong),
        Request::ReverseTopk { q, k, update, trace, approx } => match approx {
            Some(a) => svc.reverse_topk_approx(q, k, update, trace, a),
            None if trace => svc.reverse_topk_traced(q, k, update),
            None => svc.reverse_topk(q, k, update),
        }
        .map(Response::ReverseTopk),
        Request::ShardReverseTopk { q, k, update, trace, approx, pmpn, want_pmpn } => {
            if approx.is_none() && pmpn.is_none() && !want_pmpn {
                if trace {
                    svc.shard_reverse_topk_traced(q, k, update)
                } else {
                    svc.shard_reverse_topk(q, k, update)
                }
            } else {
                svc.shard_reverse_topk_ext(q, k, update, trace, approx, pmpn.as_deref(), want_pmpn)
            }
            .map(Response::ShardReverseTopk)
        }
        Request::AddEdge { from, to, weight } => {
            svc.add_edge(from, to, weight).map(Response::Updated)
        }
        Request::RemoveEdge { from, to } => svc.remove_edge(from, to).map(Response::Updated),
        Request::Topk { u, k, early } => svc.topk(u, k, early).map(Response::Topk),
        Request::Batch { queries } => svc.batch(&queries).map(Response::Batch),
        Request::Stats => svc.stats().map(|s| Response::Stats(Box::new(s))),
        Request::Shutdown => svc.shutdown().map(|()| Response::ShuttingDown),
        Request::Persist { path } => svc.persist(&path).map(|bytes| Response::Persisted { bytes }),
    };
    let response =
        result.unwrap_or_else(|e| Response::Error { code: e.status(), message: e.to_string() });
    (kind, response)
}

/// Converts an engine-layer [`QueryResult`] into its wire shape. The
/// approx counter block rides along automatically whenever the query ran
/// through the approximate screen.
pub fn to_wire(r: &QueryResult, server_seconds: f64) -> WireQueryResult {
    let s = r.stats();
    WireQueryResult {
        query: r.query(),
        k: r.k() as u32,
        nodes: r.nodes().to_vec(),
        proximities: r.proximities().to_vec(),
        candidates: s.candidates as u64,
        hits: s.hits as u64,
        refined_nodes: s.refined_nodes as u64,
        refine_iterations: s.refine_iterations,
        server_seconds,
        trace: None,
        approx: s.approx_active.then_some(WireApproxStats {
            estimated: s.approx_estimated,
            exact_refined: s.approx_exact_refined,
            walks: s.approx_walks,
        }),
    }
}

fn engine_err<E: std::fmt::Display>(e: E) -> ServiceError {
    ServiceError::Engine(e.to_string())
}

/// Flushes `bytes` of a snapshot writer to `path`, returning the file
/// size — shared by the engine and shard-engine `persist` impls.
fn persist_to<F>(path: &str, write: F) -> ServiceResult<u64>
where
    F: FnOnce(std::io::BufWriter<std::fs::File>) -> ServiceResult<()>,
{
    let file = std::fs::File::create(path)
        .map_err(|e| ServiceError::Engine(format!("persist: cannot create {path:?}: {e}")))?;
    write(std::io::BufWriter::new(file))?;
    std::fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| ServiceError::Engine(format!("persist: cannot stat {path:?}: {e}")))
}

impl RtkService for ReverseTopkEngine {
    fn reverse_topk(&mut self, q: u32, k: u32, update: bool) -> ServiceResult<WireQueryResult> {
        let opts = QueryOptions { update_index: update, ..*self.options() };
        let result = self.query_with(NodeId(q), k as usize, &opts).map_err(engine_err)?;
        let seconds = result.stats().total_seconds;
        Ok(to_wire(&result, seconds))
    }

    fn reverse_topk_traced(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
    ) -> ServiceResult<WireQueryResult> {
        let opts = QueryOptions { update_index: update, ..*self.options() };
        let result = self.query_with(NodeId(q), k as usize, &opts).map_err(engine_err)?;
        let stats = *result.stats();
        let mut wire = to_wire(&result, stats.total_seconds);
        // The span tree is rebuilt from the timings the engine already
        // records for every query — tracing adds no timing syscalls and
        // cannot change the answer.
        wire.trace = Some(stats.to_trace("engine:reverse_topk"));
        Ok(wire)
    }

    fn reverse_topk_approx(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
        trace: bool,
        approx: ApproxParams,
    ) -> ServiceResult<WireQueryResult> {
        let opts = QueryOptions { update_index: update, approx: Some(approx), ..*self.options() };
        let result = self.query_with(NodeId(q), k as usize, &opts).map_err(engine_err)?;
        let stats = *result.stats();
        let mut wire = to_wire(&result, stats.total_seconds);
        if trace {
            wire.trace = Some(stats.to_trace("engine:reverse_topk"));
        }
        Ok(wire)
    }

    fn add_edge(&mut self, from: u32, to: u32, weight: f64) -> ServiceResult<WireUpdateResult> {
        let effect = ReverseTopkEngine::add_edge(self, NodeId(from), NodeId(to), weight)
            .map_err(engine_err)?;
        Ok(WireUpdateResult {
            recomputed_states: effect.recomputed_states as u64,
            recomputed_hubs: effect.recomputed_hubs as u64,
            index_digest: self.index_digest(),
        })
    }

    fn remove_edge(&mut self, from: u32, to: u32) -> ServiceResult<WireUpdateResult> {
        let effect =
            ReverseTopkEngine::remove_edge(self, NodeId(from), NodeId(to)).map_err(engine_err)?;
        Ok(WireUpdateResult {
            recomputed_states: effect.recomputed_states as u64,
            recomputed_hubs: effect.recomputed_hubs as u64,
            index_digest: self.index_digest(),
        })
    }

    fn topk(&mut self, u: u32, k: u32, early: bool) -> ServiceResult<WireTopk> {
        let top = if early {
            self.top_k_early(NodeId(u), k as usize)
        } else {
            self.top_k(NodeId(u), k as usize)
        }
        .map_err(engine_err)?;
        let (nodes, scores) = top.into_iter().map(|(v, p)| (v.0, p)).unzip();
        Ok(WireTopk { node: u, k, nodes, scores })
    }

    fn batch(&mut self, queries: &[(u32, u32)]) -> ServiceResult<Vec<WireQueryResult>> {
        let raw: Vec<(NodeId, usize)> =
            queries.iter().map(|&(q, k)| (NodeId(q), k as usize)).collect();
        let opts = QueryOptions { update_index: false, ..*self.options() };
        let results = self.query_batch(&raw, &opts).map_err(engine_err)?;
        Ok(results.iter().map(|r| to_wire(r, r.stats().total_seconds)).collect())
    }

    fn stats(&mut self) -> ServiceResult<StatsSnapshot> {
        let info = EngineInfo {
            nodes: self.node_count() as u64,
            edges: self.graph().edge_count() as u64,
            max_k: self.index().max_k() as u64,
            workers: 0,
            shard_lo: 0,
            shard_hi: self.node_count() as u64,
            index_digest: self.index_digest(),
        };
        let shards = self.index().shards();
        Ok(StatsSnapshot::local(
            info,
            shards.iter().map(|s| s.len() as u64).collect(),
            shards.iter().map(|s| s.heap_bytes() as u64).collect(),
        ))
    }

    fn persist(&mut self, path: &str) -> ServiceResult<u64> {
        persist_to(path, |w| self.save(w).map_err(engine_err))
    }

    fn shutdown(&mut self) -> ServiceResult<()> {
        Ok(())
    }
}

impl RtkService for ShardEngine {
    fn reverse_topk(&mut self, _q: u32, _k: u32, _update: bool) -> ServiceResult<WireQueryResult> {
        let r = self.shard_range();
        Err(ServiceError::Unsupported(format!(
            "this backend serves only shard nodes {}..{} (--shard-only); \
             send shard_reverse_topk, or query the router for full answers",
            r.start, r.end
        )))
    }

    fn shard_reverse_topk(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
    ) -> ServiceResult<WireShardResult> {
        self.shard_reverse_topk_ext(q, k, update, false, None, None, false)
    }

    fn shard_reverse_topk_traced(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
    ) -> ServiceResult<WireShardResult> {
        self.shard_reverse_topk_ext(q, k, update, true, None, None, false)
    }

    fn shard_reverse_topk_ext(
        &mut self,
        q: u32,
        k: u32,
        update: bool,
        trace: bool,
        approx: Option<ApproxParams>,
        pmpn: Option<&[f64]>,
        want_pmpn: bool,
    ) -> ServiceResult<WireShardResult> {
        let opts = QueryOptions { approx, ..QueryOptions::default() };
        let (result, pmpn_out) = if update {
            self.query_shard_update_with_pmpn(NodeId(q), k as usize, &opts, pmpn, want_pmpn)
        } else {
            self.query_shard_frozen_with_pmpn(NodeId(q), k as usize, &opts, pmpn, want_pmpn)
        }
        .map_err(engine_err)?;
        let range = self.shard_range();
        let stats = *result.stats();
        let mut wire = to_wire(&result, stats.total_seconds);
        if trace {
            wire.trace = Some(
                stats
                    .to_trace("engine:shard_reverse_topk")
                    .annotate("shard", self.shard_id().to_string()),
            );
        }
        Ok(WireShardResult {
            shard_id: self.shard_id() as u32,
            node_lo: range.start,
            node_hi: range.end,
            result: wire,
            pmpn: pmpn_out,
        })
    }

    fn add_edge(&mut self, from: u32, to: u32, weight: f64) -> ServiceResult<WireUpdateResult> {
        let effect =
            ShardEngine::add_edge(self, NodeId(from), NodeId(to), weight).map_err(engine_err)?;
        Ok(WireUpdateResult {
            recomputed_states: effect.recomputed_states as u64,
            recomputed_hubs: effect.recomputed_hubs as u64,
            index_digest: self.index_digest(),
        })
    }

    fn remove_edge(&mut self, from: u32, to: u32) -> ServiceResult<WireUpdateResult> {
        let effect =
            ShardEngine::remove_edge(self, NodeId(from), NodeId(to)).map_err(engine_err)?;
        Ok(WireUpdateResult {
            recomputed_states: effect.recomputed_states as u64,
            recomputed_hubs: effect.recomputed_hubs as u64,
            index_digest: self.index_digest(),
        })
    }

    fn topk(&mut self, u: u32, k: u32, early: bool) -> ServiceResult<WireTopk> {
        let top = if early {
            self.top_k_early(NodeId(u), k as usize)
        } else {
            self.top_k(NodeId(u), k as usize)
        }
        .map_err(engine_err)?;
        let (nodes, scores) = top.into_iter().map(|(v, p)| (v.0, p)).unzip();
        Ok(WireTopk { node: u, k, nodes, scores })
    }

    fn batch(&mut self, _queries: &[(u32, u32)]) -> ServiceResult<Vec<WireQueryResult>> {
        let r = self.shard_range();
        Err(ServiceError::Unsupported(format!(
            "this backend serves only shard nodes {}..{} (--shard-only); \
             batch requests need the router or a full server",
            r.start, r.end
        )))
    }

    fn stats(&mut self) -> ServiceResult<StatsSnapshot> {
        let range = self.shard_range();
        let info = EngineInfo {
            nodes: self.node_count() as u64,
            edges: self.graph().edge_count() as u64,
            max_k: self.max_k() as u64,
            workers: 0,
            shard_lo: u64::from(range.start),
            shard_hi: u64::from(range.end),
            index_digest: self.index_digest(),
        };
        Ok(StatsSnapshot::local(
            info,
            vec![self.shard_len() as u64],
            vec![self.shard_heap_bytes() as u64],
        ))
    }

    fn persist(&mut self, path: &str) -> ServiceResult<u64> {
        persist_to(path, |w| self.save_shard(w).map_err(engine_err))
    }

    fn shutdown(&mut self) -> ServiceResult<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_engine(shards: usize) -> ReverseTopkEngine {
        ReverseTopkEngine::builder(rtk_datasets::toy_graph())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .shards(shards)
            .build()
            .unwrap()
    }

    /// Drives any service flavor through the same paper running example —
    /// the point of the trait is that this function cannot tell them apart.
    fn exercise(svc: &mut impl RtkService) {
        svc.ping().unwrap();
        let r = svc.reverse_topk(0, 2, false).unwrap();
        assert_eq!(r.nodes, vec![0, 1, 4]);
        let t = svc.topk(2, 2, false).unwrap();
        assert_eq!(t.nodes[0], 1);
        let rs = svc.batch(&[(0, 2), (1, 2)]).unwrap();
        assert_eq!(rs.len(), 2);
        let s = svc.stats().unwrap();
        assert_eq!(s.nodes, 6);
        svc.shutdown().unwrap();
    }

    #[test]
    fn local_engine_implements_the_full_surface() {
        let mut engine = toy_engine(1);
        exercise(&mut engine);
        // Update mode commits without changing answers.
        let r = engine.reverse_topk(0, 2, true).unwrap();
        assert_eq!(r.nodes, vec![0, 1, 4]);
        // Dispatching a decoded wire request lands on the same method.
        let (kind, resp) = dispatch_request(
            &mut engine,
            Request::ReverseTopk { q: 0, k: 2, update: false, trace: false, approx: None },
        );
        assert_eq!(kind, RequestKind::ReverseTopk);
        let Response::ReverseTopk(r) = resp else { panic!("wrong response: {resp:?}") };
        assert_eq!(r.nodes, vec![0, 1, 4]);
        assert!(r.trace.is_none());
        // Unknown nodes surface as engine errors, not panics.
        let (_, resp) = dispatch_request(
            &mut engine,
            Request::ReverseTopk { q: 99, k: 2, update: false, trace: false, approx: None },
        );
        assert!(matches!(resp, Response::Error { code: STATUS_ENGINE_ERROR, .. }), "{resp:?}");
    }

    #[test]
    fn traced_queries_attach_phase_spans_without_changing_answers() {
        let mut engine = toy_engine(1);
        let plain = engine.reverse_topk(0, 2, false).unwrap();
        let (_, resp) = dispatch_request(
            &mut engine,
            Request::ReverseTopk { q: 0, k: 2, update: false, trace: true, approx: None },
        );
        let Response::ReverseTopk(traced) = resp else { panic!("wrong response: {resp:?}") };
        // Bitwise-identical answer, plus a span tree with the two-phase
        // breakdown whose child durations sum to the root.
        assert_eq!(traced.nodes, plain.nodes);
        assert_eq!(traced.proximities, plain.proximities);
        let trace = traced.trace.expect("traced response carries a span tree");
        assert_eq!(trace.name, "engine:reverse_topk");
        let names: Vec<&str> = trace.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["pmpn_solve", "screen", "commit"]);
        let child_sum: f64 = trace.children.iter().map(|c| c.duration_seconds).sum();
        assert!(
            (child_sum - trace.duration_seconds).abs() <= 1e-12 * trace.duration_seconds.max(1.0)
        );

        // The shard flavor traces too, annotated with its shard id.
        use rtk_core::index::ShardSlice;
        let sharded = toy_engine(2);
        let slice = ShardSlice::from_index(sharded.index(), 0).unwrap();
        let mut shard = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
        let partial = shard.shard_reverse_topk_traced(0, 2, false).unwrap();
        let trace = partial.result.trace.expect("traced shard response carries a span tree");
        assert_eq!(trace.name, "engine:shard_reverse_topk");
        assert!(trace.annotations.iter().any(|(k, v)| k == "shard" && v == "0"));
    }

    #[test]
    fn shard_engine_answers_the_shard_scoped_surface() {
        use rtk_core::index::ShardSlice;
        let engine = toy_engine(2);
        let slice = ShardSlice::from_index(engine.index(), 0).unwrap();
        let mut shard = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();

        // Full-index requests are clean Unsupported errors.
        assert!(matches!(
            shard.reverse_topk(0, 2, false),
            Err(ServiceError::Unsupported(m)) if m.contains("--shard-only")
        ));
        assert!(matches!(shard.batch(&[(0, 2)]), Err(ServiceError::Unsupported(_))));

        // The shard-scoped slice answers (nodes 0..3 of {0, 1, 4} = {0, 1}).
        let partial = shard.shard_reverse_topk(0, 2, false).unwrap();
        assert_eq!(partial.result.nodes, vec![0, 1]);
        assert_eq!((partial.node_lo, partial.node_hi), (0, 3));

        // Shard-independent requests work like any service.
        shard.ping().unwrap();
        let s = shard.stats().unwrap();
        assert_eq!((s.shard_lo, s.shard_hi), (0, 3));
        assert_eq!(s.shard_count(), 1);
        let t = shard.topk(2, 2, false).unwrap();
        assert_eq!(t.nodes[0], 1);
    }

    #[test]
    fn persist_writes_loadable_snapshots() {
        let dir = std::env::temp_dir().join("rtk_api_service_persist");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.rtke");
        let mut engine = toy_engine(1);
        let bytes = engine.persist(path.to_str().unwrap()).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        let mut restored = ReverseTopkEngine::load_path(&path).unwrap();
        assert_eq!(restored.query(NodeId(0), 2).unwrap().nodes(), &[0, 1, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
