//! Subcommand dispatch and shared graph/index loading helpers.

mod convert;
mod generate;
mod index_cmd;
mod log_cmd;
mod pmpn;
mod query;
mod remote;
mod router;
mod serve;
mod shard;
mod stats;
mod topk;

use crate::args::Parsed;
use rtk_graph::{DanglingPolicy, DiGraph};
use std::path::Path;

const USAGE: &str = "\
usage:
  rtk generate <dataset> --out <file>            synthesize a graph
  rtk stats <graph>                              graph summary
  rtk index build <graph> --out <file> [--max-k K] [--hubs B] [--omega W] [--threads T] [--shards S]
  rtk index info <index>                         index statistics
  rtk shard split <index> --shards S [--balance nodes|edges --graph <g>] [--out F]
                                                 re-partition a saved index
  rtk shard merge <index> [--out F]              flatten to one shard (legacy format)
  rtk shard info <index>                         shard manifest summary
  rtk query <graph> <index> --node Q --k K [--update] [--strict] [--approximate] [--threads T]
  rtk topk <graph> --node U --k K [--early] [--threads T]   forward top-k search
  rtk pmpn <graph> --node Q [--top N] [--threads T]         proximities to a node
  rtk convert <in> <out>                         tsv <-> binary graph formats
  rtk serve --index <file> [--graph <file>] [--addr A] [--workers N]
            [--query-threads T] [--max-frame-mib M] [--max-connections C]
            [--persist-dir D] [--auth-token T] [--metrics-addr A]
            [--update-log F] [--log-file F] [--log-level L]   run the TCP server
  rtk serve --shard-only --shard I --index <manifest> --graph <file> [...]
                                                 serve ONE shard (router backend)
  rtk router --backends a:p,b:p,… [--addr A] [--workers N] [--max-connections C]
             [--max-frame-mib M] [--auth-token T] [--metrics-addr A]
             [--log-file F] [--log-level L]     fan-out router over shard backends
  rtk remote query --node Q --k K [--update] [--trace] [--addr A]   query a server/router
  rtk remote topk --node U --k K [--early] [--addr A]
  rtk remote batch --nodes a,b,c --k K [--addr A]
  rtk remote add-edge --from U --to V [--weight W] [--addr A]   apply an edge insert
  rtk remote remove-edge --from U --to V [--addr A]             apply an edge removal
  rtk remote persist --out <server-path> [--addr A]         flush snapshot to disk
  rtk remote stats [--json] [--addr A]           server/tier counters
  rtk remote ping|shutdown [--addr A]            (all remote cmds take --auth-token)
  rtk log info <log> [--limit N]                 update-log (RTKULOG1) summary
  rtk log replay --index <snapshot> --log <log> --out <file>
                                                 deterministic snapshot + log replay

datasets for `generate`: toy, web-cs-small, web-cs-sim, epinions-sim,
web-std-sim, web-google-sim, webspam-sim, dblp-sim, rmat:<n>:<m>[:seed],
er:<n>:<m>[:seed], sf:<n>:<deg>[:seed]";

/// Routes `argv` to a subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err(format!("no command given\n{USAGE}"));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => generate::run(&Parsed::parse(rest)?),
        "stats" => stats::run(&Parsed::parse(rest)?),
        "index" => index_cmd::run(rest),
        "query" => query::run(&Parsed::parse(rest)?),
        "topk" => topk::run(&Parsed::parse(rest)?),
        "pmpn" => pmpn::run(&Parsed::parse(rest)?),
        "convert" => convert::run(&Parsed::parse(rest)?),
        "serve" => serve::run(&Parsed::parse(rest)?),
        "router" => router::run(&Parsed::parse(rest)?),
        "shard" => shard::run(rest),
        "remote" => remote::run(rest),
        "log" => log_cmd::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Installs the process logger from `--log-level <error|warn|info|debug>`
/// and `--log-file <path>` (stderr by default) — shared by the serving
/// commands, which emit structured events for the tier's health changes.
pub(crate) fn init_logging(args: &Parsed) -> Result<(), String> {
    let level = match args.get("log-level") {
        None => rtk_obs::Level::Info,
        Some(s) => rtk_obs::Level::parse(s)
            .ok_or_else(|| format!("--log-level: expected error|warn|info|debug, got {s:?}"))?,
    };
    rtk_obs::log::init(level, args.get("log-file").map(Path::new))
}

/// True when `path` should use the TSV edge-list format.
pub(crate) fn is_tsv(path: &str) -> bool {
    let lower = path.to_ascii_lowercase();
    [".tsv", ".txt", ".edges"].iter().any(|ext| lower.ends_with(ext))
}

/// Loads a graph, picking the format from the extension.
pub(crate) fn load_graph(path: &str) -> Result<DiGraph, String> {
    if !Path::new(path).exists() {
        return Err(format!("graph file {path:?} does not exist"));
    }
    let result = if is_tsv(path) {
        rtk_graph::io::read_edge_list_path(path, None, DanglingPolicy::SelfLoop)
    } else {
        rtk_graph::io::read_binary_path(path)
    };
    result.map_err(|e| format!("failed to load {path:?}: {e}"))
}

/// Saves a graph, picking the format from the extension.
pub(crate) fn save_graph(graph: &DiGraph, path: &str) -> Result<(), String> {
    let result = if is_tsv(path) {
        std::fs::File::create(path)
            .map_err(rtk_graph::GraphError::Io)
            .and_then(|f| rtk_graph::io::write_edge_list(graph, f))
    } else {
        rtk_graph::io::write_binary_path(graph, path)
    };
    result.map_err(|e| format!("failed to write {path:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert!(is_tsv("graph.tsv"));
        assert!(is_tsv("GRAPH.TXT"));
        assert!(is_tsv("a/b/c.edges"));
        assert!(!is_tsv("graph.rtkg"));
        assert!(!is_tsv("graph"));
    }

    #[test]
    fn unknown_command_mentions_usage() {
        let err = dispatch(&["frobnicate".into()]).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("usage:"));
    }

    #[test]
    fn no_command_mentions_usage() {
        assert!(dispatch(&[]).unwrap_err().contains("usage:"));
    }

    #[test]
    fn help_succeeds() {
        dispatch(&["help".into()]).unwrap();
    }

    #[test]
    fn graph_round_trip_via_helpers() {
        let g = rtk_datasets::toy_graph();
        let dir = std::env::temp_dir().join("rtk_cli_test_mod");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["toy.tsv", "toy.rtkg"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            save_graph(&g, path).unwrap();
            let back = load_graph(path).unwrap();
            assert_eq!(back, g, "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_fails_cleanly() {
        let err = load_graph("/definitely/not/here.tsv").unwrap_err();
        assert!(err.contains("does not exist"));
    }
}
