//! `rtk index build` / `rtk index info`.

use crate::args::Parsed;
use rtk_graph::TransitionMatrix;
use rtk_index::{HubSelection, IndexConfig, ReverseIndex};

pub(crate) fn run(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("index: expected `build` or `info`".into());
    };
    let rest = Parsed::parse(&argv[1..])?;
    match sub.as_str() {
        "build" => build(&rest),
        "info" => info(&rest),
        other => Err(format!("index: unknown subcommand {other:?}")),
    }
}

fn build(args: &Parsed) -> Result<(), String> {
    let graph_path = args.positional(0, "graph")?;
    let out = args
        .get("out")
        .ok_or_else(|| "index build: --out <file> is required".to_string())?;
    let max_k = args.get_num("max-k", 200usize)?;
    let hubs = args.get_num("hubs", 50usize)?;
    let omega = args.get_num("omega", 1e-6f64)?;
    let threads = args.get_num("threads", 0usize)?;
    let shards = args.get_num("shards", 1usize)?;

    let graph = super::load_graph(graph_path)?;
    let transition = TransitionMatrix::new(&graph);
    let config = IndexConfig {
        max_k,
        hub_selection: HubSelection::DegreeBased { b: hubs },
        rounding_threshold: omega,
        threads,
        shards,
        ..Default::default()
    };
    let index =
        ReverseIndex::build(&transition, config).map_err(|e| format!("index build: {e}"))?;
    rtk_index::storage::save_path(&index, out).map_err(|e| format!("index save: {e}"))?;
    println!(
        "built index over {graph_path} ({} shard(s)): {}",
        index.shard_count(),
        index.stats().summary()
    );
    println!("wrote {out}");
    Ok(())
}

fn info(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "index")?;
    let index = rtk_index::storage::load_path(path).map_err(|e| format!("index load: {e}"))?;
    let s = index.stats();
    println!("index: {path}");
    println!("  nodes:       {}", index.node_count());
    println!("  max k (K):   {}", index.max_k());
    println!("  shards:      {}", index.shard_count());
    println!("  hubs:        {}", s.hub_count);
    println!("  rounding ω:  {:e}", index.config().rounding_threshold);
    println!("  α:           {}", index.config().alpha());
    println!("  built in:    {:.2}s on {} threads", s.total_seconds, s.threads);
    println!(
        "  size:        {:.1} MiB ({:.1} MiB without rounding, {:.1} MiB lower bounds only)",
        s.actual_bytes as f64 / (1024.0 * 1024.0),
        s.no_rounding_bytes as f64 / (1024.0 * 1024.0),
        s.lower_bound_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  BCA: η = {:e}, δ = {:e}",
        index.config().bca.propagation_threshold,
        index.config().bca.residue_threshold
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_info_round_trip() {
        let dir = std::env::temp_dir().join("rtk_cli_test_index");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.rtkg");
        super::super::save_graph(&rtk_datasets::toy_graph(), gpath.to_str().unwrap()).unwrap();
        let ipath = dir.join("g.rtki");

        let argv: Vec<String> = vec![
            "build".into(),
            gpath.to_str().unwrap().into(),
            "--out".into(),
            ipath.to_str().unwrap().into(),
            "--max-k".into(),
            "3".into(),
            "--hubs".into(),
            "1".into(),
            "--threads".into(),
            "1".into(),
        ];
        run(&argv).unwrap();
        assert!(ipath.exists());

        let argv: Vec<String> = vec!["info".into(), ipath.to_str().unwrap().into()];
        run(&argv).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_unknown_subcommand() {
        assert!(run(&["frob".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }
}
