//! `rtk topk` — forward top-k RWR proximity search.

use crate::args::Parsed;
use rtk_graph::TransitionMatrix;
use rtk_rwr::{BcaParams, RwrParams};

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let graph_path = args.positional(0, "graph")?;
    let u: u32 = args
        .get("node")
        .ok_or_else(|| "topk: --node <id> is required".to_string())?
        .parse()
        .map_err(|_| "topk: --node expects a node id".to_string())?;
    let k = args.get_num("k", 10usize)?;
    let alpha = args.get_num("alpha", 0.15f64)?;
    let threads = args.get_num("threads", 0usize)?;

    let graph = super::load_graph(graph_path)?;
    if u as usize >= graph.node_count() {
        return Err(format!("topk: node {u} out of range (graph has {})", graph.node_count()));
    }
    let transition = TransitionMatrix::new(&graph);

    let top = if args.has("early") {
        let params = BcaParams {
            alpha,
            propagation_threshold: 1e-7,
            residue_threshold: 0.0,
            max_iterations: 100_000,
        };
        let (top, report) = rtk_query::top_k_rwr_early(&transition, u, k, &params);
        println!(
            "top-{k} from node {u} (early termination after {} iterations, residual {:.2e}):",
            report.iterations, report.final_residual
        );
        top
    } else {
        let params = RwrParams::with_alpha(alpha).with_threads(threads);
        let top = rtk_query::baseline::top_k_rwr(&transition, u, k, &params);
        println!("top-{k} from node {u} (exact power method):");
        top
    };
    for (rank, (v, p)) in top.iter().enumerate() {
        println!("  {:>3}. node {v}  (proximity {p:.6})", rank + 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_early_both_run() {
        let dir = std::env::temp_dir().join("rtk_cli_test_topk");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.rtkg");
        super::super::save_graph(&rtk_datasets::toy_graph(), path.to_str().unwrap()).unwrap();
        for extra in [vec![], vec!["--early".to_string()]] {
            let mut argv: Vec<String> = vec![
                path.to_str().unwrap().into(),
                "--node".into(),
                "2".into(),
                "--k".into(),
                "2".into(),
            ];
            argv.extend(extra);
            run(&Parsed::parse(&argv).unwrap()).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_node_errors() {
        let dir = std::env::temp_dir().join("rtk_cli_test_topk2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.rtkg");
        super::super::save_graph(&rtk_datasets::toy_graph(), path.to_str().unwrap()).unwrap();
        let argv: Vec<String> = vec![path.to_str().unwrap().into(), "--node".into(), "99".into()];
        assert!(run(&Parsed::parse(&argv).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
