//! `rtk shard split|merge|info|stitch` — offline re-partitioning and
//! re-assembly of a saved index.
//!
//! Sharding is a pure layout change: `split` re-partitions an existing
//! index (legacy or sharded) into `--shards N` contiguous node ranges
//! (even by node count, or by total out-degree with `--balance edges`),
//! `merge` flattens back to one shard (the legacy single-blob format),
//! `info` prints the shard manifest, and `stitch` re-assembles the
//! `<path>.shard<i>` section files a router-tier `persist` leaves behind
//! into one manifest. Per-node states are preserved bitwise, so a
//! re-partitioned or stitched index answers every query identically.

use crate::args::Parsed;

pub(crate) fn run(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("shard: expected `split`, `merge`, `info`, or `stitch`".into());
    };
    let rest = Parsed::parse(&argv[1..])?;
    match sub.as_str() {
        "split" => split(&rest),
        "merge" => merge(&rest),
        "info" => info(&rest),
        "stitch" => stitch(&rest),
        other => Err(format!("shard: unknown subcommand {other:?}")),
    }
}

fn load(path: &str) -> Result<rtk_index::ReverseIndex, String> {
    rtk_index::storage::load_path(path).map_err(|e| format!("shard: index load: {e}"))
}

fn save(index: &rtk_index::ReverseIndex, path: &str) -> Result<(), String> {
    rtk_index::storage::save_path(index, path).map_err(|e| format!("shard: index save: {e}"))
}

/// `rtk shard split <index> --shards N [--balance nodes|edges --graph <g>]
/// [--out <file>]`
///
/// `--balance nodes` (the default) cuts even node ranges; `--balance
/// edges` cuts ranges of roughly equal total out-degree, read from
/// `--graph`, so skewed graphs give every shard the same screen *work*.
/// Either layout preserves per-node states bitwise.
fn split(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "index")?;
    let shards = args.get_num("shards", 0usize)?;
    if shards == 0 {
        return Err("shard split: --shards <N ≥ 1> is required".into());
    }
    let out = args.get("out").unwrap_or(path);
    let balance = args.get("balance").unwrap_or("nodes");
    let mut index = load(path)?;
    let before = index.shard_count();
    match balance {
        "nodes" => index.repartition(shards),
        "edges" => {
            let Some(graph_path) = args.get("graph") else {
                return Err(
                    "shard split: --balance edges needs --graph <graph> for out-degrees".into()
                );
            };
            let graph = super::load_graph(graph_path)?;
            if graph.node_count() != index.node_count() {
                return Err(format!(
                    "shard split: graph has {} nodes but the index covers {}",
                    graph.node_count(),
                    index.node_count()
                ));
            }
            let n = index.node_count();
            let weights: Vec<u64> =
                (0..n as u32).map(|u| graph.out_neighbors(u).len() as u64).collect();
            index.repartition_by_map(rtk_index::ShardMap::balanced(n, shards, &weights));
        }
        other => {
            return Err(format!(
                "shard split: unknown --balance {other:?} (expected `nodes` or `edges`)"
            ))
        }
    }
    save(&index, out)?;
    println!(
        "re-partitioned {path} from {before} to {} shard(s) (balance: {balance}); wrote {out}",
        index.shard_count()
    );
    Ok(())
}

/// `rtk shard merge <index> [--out <file>]`: flatten to one shard (the
/// legacy single-blob format old tooling understands).
fn merge(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "index")?;
    let out = args.get("out").unwrap_or(path);
    let mut index = load(path)?;
    let before = index.shard_count();
    index.repartition(1);
    save(&index, out)?;
    println!("merged {path} ({before} shard(s)) into a single-shard index; wrote {out}");
    Ok(())
}

/// `rtk shard stitch <prefix> --index <donor> [--out <file>]`: re-assemble
/// the `<prefix>.shard0..N-1` sections written by a router-tier `persist`
/// into one index, taking everything shared (hub matrix, parameters,
/// stats) from the donor snapshot the backends were loaded from.
fn stitch(args: &Parsed) -> Result<(), String> {
    let prefix = args.positional(0, "section prefix")?;
    let Some(donor_path) = args.get("index") else {
        return Err("shard stitch: --index <donor snapshot> is required".into());
    };
    let out = args.get("out").unwrap_or(prefix);
    let donor = load(donor_path)?;
    let stitched = rtk_index::storage::stitch_path_prefix(&donor, prefix)
        .map_err(|e| format!("shard stitch: {e}"))?;
    save(&stitched, out)?;
    println!(
        "stitched {} section(s) at {prefix}.shard* over donor {donor_path}; wrote {out}",
        stitched.shard_count()
    );
    Ok(())
}

/// `rtk shard info <index>`: the shard manifest at a glance.
fn info(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "index")?;
    let index = load(path)?;
    println!("index: {path}");
    println!("  nodes:   {}", index.node_count());
    println!("  max k:   {}", index.max_k());
    println!("  shards:  {}", index.shard_count());
    for shard in index.shards() {
        let r = shard.range();
        println!(
            "  shard {:>3}: nodes {:>8}..{:<8} ({} nodes, {:.2} MiB)",
            shard.id(),
            r.start,
            r.end,
            shard.len(),
            shard.heap_bytes() as f64 / (1024.0 * 1024.0),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::TransitionMatrix;
    use rtk_index::{HubSelection, IndexConfig, ReverseIndex};

    fn build_index(dir: &std::path::Path) -> std::path::PathBuf {
        let g = rtk_datasets::toy_graph();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 3,
            hub_selection: HubSelection::DegreeBased { b: 1 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let path = dir.join("g.rtki");
        rtk_index::storage::save_path(&index, &path).unwrap();
        path
    }

    #[test]
    fn split_merge_info_round_trip() {
        let dir = std::env::temp_dir().join("rtk_cli_test_shard");
        std::fs::create_dir_all(&dir).unwrap();
        let ipath = build_index(&dir);
        let ipath_str = ipath.to_str().unwrap().to_string();
        let sharded = dir.join("g4.rtki");
        let sharded_str = sharded.to_str().unwrap().to_string();

        // Split a legacy index into 3 shards.
        run(&[
            "split".into(),
            ipath_str.clone(),
            "--shards".into(),
            "3".into(),
            "--out".into(),
            sharded_str.clone(),
        ])
        .unwrap();
        let loaded = rtk_index::storage::load_path(&sharded).unwrap();
        assert_eq!(loaded.shard_count(), 3);
        let original = rtk_index::storage::load_path(&ipath).unwrap();
        for u in 0..6u32 {
            assert_eq!(loaded.state(u), original.state(u), "node {u}");
        }

        // Info runs on both layouts.
        run(&["info".into(), ipath_str.clone()]).unwrap();
        run(&["info".into(), sharded_str.clone()]).unwrap();

        // Merge back: byte-identical to the original legacy file.
        let merged = dir.join("merged.rtki");
        run(&["merge".into(), sharded_str, "--out".into(), merged.to_str().unwrap().into()])
            .unwrap();
        let a = std::fs::read(&ipath).unwrap();
        let b = std::fs::read(&merged).unwrap();
        assert_eq!(a, b, "merge must restore the legacy bytes");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stitch_reassembles_router_persist_outputs() {
        let dir = std::env::temp_dir().join("rtk_cli_test_stitch");
        std::fs::create_dir_all(&dir).unwrap();
        let donor_path = build_index(&dir);
        let donor_str = donor_path.to_str().unwrap().to_string();

        // Simulate a 2-backend router persist: one standalone section per
        // shard, named `<prefix>.shard<i>`.
        let mut donor = rtk_index::storage::load_path(&donor_path).unwrap();
        donor.repartition(2);
        let prefix = dir.join("persisted.rtki");
        for shard in donor.shards() {
            let path = dir.join(format!("persisted.rtki.shard{}", shard.id()));
            let file = std::fs::File::create(&path).unwrap();
            rtk_index::storage::save_shard(shard, donor.node_count(), donor.max_k(), file).unwrap();
        }

        let out = dir.join("stitched.rtki");
        run(&[
            "stitch".into(),
            prefix.to_str().unwrap().into(),
            "--index".into(),
            donor_str,
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let stitched = rtk_index::storage::load_path(&out).unwrap();
        assert_eq!(stitched.shard_count(), 2);
        for u in 0..6u32 {
            assert_eq!(stitched.state(u), donor.state(u), "node {u}");
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_balance_edges_uses_degree_weights() {
        let dir = std::env::temp_dir().join("rtk_cli_test_balance");
        std::fs::create_dir_all(&dir).unwrap();
        let ipath = build_index(&dir);
        let ipath_str = ipath.to_str().unwrap().to_string();
        let gpath = dir.join("g.tsv");
        super::super::save_graph(&rtk_datasets::toy_graph(), gpath.to_str().unwrap()).unwrap();
        let out = dir.join("balanced.rtki");

        // --balance edges without --graph is rejected.
        assert!(run(&[
            "split".into(),
            ipath_str.clone(),
            "--shards".into(),
            "2".into(),
            "--balance".into(),
            "edges".into(),
        ])
        .unwrap_err()
        .contains("--graph"));
        // Unknown balance modes are rejected.
        assert!(run(&[
            "split".into(),
            ipath_str.clone(),
            "--shards".into(),
            "2".into(),
            "--balance".into(),
            "degrees".into(),
        ])
        .is_err());

        run(&[
            "split".into(),
            ipath_str.clone(),
            "--shards".into(),
            "2".into(),
            "--balance".into(),
            "edges".into(),
            "--graph".into(),
            gpath.to_str().unwrap().into(),
            "--out".into(),
            out.to_str().unwrap().into(),
        ])
        .unwrap();
        let loaded = rtk_index::storage::load_path(&out).unwrap();
        assert_eq!(loaded.shard_count(), 2);
        // The layout matches ShardMap::balanced over the graph's out-degrees…
        let g = rtk_datasets::toy_graph();
        let weights: Vec<u64> = (0..6u32).map(|u| g.out_neighbors(u).len() as u64).collect();
        let expect = rtk_index::ShardMap::balanced(6, 2, &weights);
        assert_eq!(loaded.shard_map(), &expect);
        // …and every per-node state survives the move bitwise.
        let original = rtk_index::storage::load_path(&ipath).unwrap();
        for u in 0..6u32 {
            assert_eq!(loaded.state(u), original.state(u), "node {u}");
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(run(&[]).is_err());
        assert!(run(&["frob".into()]).is_err());
        assert!(run(&["split".into(), "x.rtki".into()]).is_err()); // no --shards
        assert!(run(&["stitch".into(), "x.rtki".into()]).is_err()); // no --index
    }
}
