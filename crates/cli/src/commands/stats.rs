//! `rtk stats` — graph summary.

use crate::args::Parsed;
use rtk_graph::degree::{degree_stats, top_b_by_degree, DegreeKind};

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "graph")?;
    let graph = super::load_graph(path)?;
    println!("graph: {path}");
    println!("  nodes:    {}", graph.node_count());
    println!("  edges:    {}", graph.edge_count());
    println!("  weighted: {}", graph.is_weighted());
    println!("  memory:   {:.1} MiB", graph.heap_bytes() as f64 / (1024.0 * 1024.0));
    for (label, kind) in [("out", DegreeKind::Out), ("in", DegreeKind::In)] {
        let s = degree_stats(&graph, kind);
        println!(
            "  {label}-degree: min {} / mean {:.2} / max {} ({} zero)",
            s.min, s.mean, s.max, s.zeros
        );
    }
    let top_in = top_b_by_degree(&graph, DegreeKind::In, 5);
    let top_out = top_b_by_degree(&graph, DegreeKind::Out, 5);
    println!("  top in-degree nodes:  {top_in:?}");
    println!("  top out-degree nodes: {top_out:?}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_generated_file() {
        let dir = std::env::temp_dir().join("rtk_cli_test_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.rtkg");
        super::super::save_graph(&rtk_datasets::toy_graph(), path.to_str().unwrap()).unwrap();
        let argv: Vec<String> = vec![path.to_str().unwrap().into()];
        run(&Parsed::parse(&argv).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_on_missing_file_errors() {
        let argv: Vec<String> = vec!["/nope/missing.rtkg".into()];
        assert!(run(&Parsed::parse(&argv).unwrap()).is_err());
    }
}
