//! `rtk convert` — translate between TSV and binary graph formats.

use crate::args::Parsed;

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let input = args.positional(0, "input")?;
    let output = args.positional(1, "output")?;
    if super::is_tsv(input) == super::is_tsv(output) {
        // Same-format copies are legal (e.g. repair dangling nodes), just
        // mention it so accidental no-ops are visible.
        println!("note: input and output use the same format");
    }
    let graph = super::load_graph(input)?;
    super::save_graph(&graph, output)?;
    println!(
        "converted {input} -> {output} ({} nodes / {} edges)",
        graph.node_count(),
        graph.edge_count()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_to_binary_and_back() {
        let dir = std::env::temp_dir().join("rtk_cli_test_convert");
        std::fs::create_dir_all(&dir).unwrap();
        let tsv = dir.join("g.tsv");
        let bin = dir.join("g.rtkg");
        let tsv2 = dir.join("g2.tsv");
        super::super::save_graph(&rtk_datasets::toy_graph(), tsv.to_str().unwrap()).unwrap();

        let argv: Vec<String> = vec![tsv.to_str().unwrap().into(), bin.to_str().unwrap().into()];
        run(&Parsed::parse(&argv).unwrap()).unwrap();
        let argv: Vec<String> = vec![bin.to_str().unwrap().into(), tsv2.to_str().unwrap().into()];
        run(&Parsed::parse(&argv).unwrap()).unwrap();

        let a = super::super::load_graph(tsv.to_str().unwrap()).unwrap();
        let b = super::super::load_graph(tsv2.to_str().unwrap()).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }
}
