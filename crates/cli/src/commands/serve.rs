//! `rtk serve` — run the reverse top-k network server over a saved index,
//! either whole (`rtk serve`) or one shard per process (`--shard-only
//! --shard <i>`, fronted by `rtk router`). `--chaos <spec>` arms seeded
//! fault injection (drop/delay/close-after/refuse — see
//! [`rtk_server::ChaosConfig`]) for exercising the router's failover.

use crate::args::Parsed;
use rtk_core::{ReverseTopkEngine, ShardEngine};
use rtk_server::{Server, ServerConfig};
use std::io::Read;

/// Default listen address when `--addr` is omitted.
pub(crate) const DEFAULT_ADDR: &str = "127.0.0.1:7313";

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    super::init_logging(args).map_err(|e| format!("serve: {e}"))?;
    let addr = args.get("addr").unwrap_or(DEFAULT_ADDR);
    let config = ServerConfig {
        workers: args.get_num("workers", 0usize)?,
        max_frame_bytes: args
            .get_num("max-frame-mib", 16u32)?
            .saturating_mul(1024 * 1024)
            .max(1024),
        query_threads: args.get_num("query-threads", 1usize)?,
        max_connections: args
            .get_num("max-connections", rtk_server::server::DEFAULT_MAX_CONNECTIONS)?,
        max_inflight: args.get_num("max-inflight", 0usize)?,
        persist_dir: args.get("persist-dir").map(std::path::PathBuf::from),
        auth_token: args.get("auth-token").map(str::to_string),
        chaos: args
            .get("chaos")
            .map(|spec| rtk_server::ChaosConfig::parse(spec).map_err(|e| format!("serve: {e}")))
            .transpose()?,
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        update_log: args.get("update-log").map(std::path::PathBuf::from),
    };

    let (server, what) = if args.has("shard-only") {
        let engine = load_shard_engine(args)?;
        let what = format!(
            "shard {} of {} (nodes {}..{})",
            engine.shard_id(),
            engine.shard_count(),
            engine.shard_range().start,
            engine.shard_range().end
        );
        let server = Server::bind_shard(engine, addr, config.clone())
            .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
        (server, what)
    } else {
        let engine = load_engine(args)?;
        let what = format!("{} index shard(s)", engine.shard_count());
        let server = Server::bind(engine, addr, config.clone())
            .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
        (server, what)
    };
    println!(
        "rtk-server listening on {} ({} workers, {what}{}{}); \
         stop with `rtk remote shutdown --addr {}`",
        server.local_addr(),
        if config.workers == 0 { "all-core".to_string() } else { config.workers.to_string() },
        if config.max_connections > 0 {
            format!(", ≤{} connections", config.max_connections)
        } else {
            String::new()
        },
        if config.auth_token.is_some() { ", auth required" } else { "" },
        server.local_addr()
    );
    if let Some(maddr) = server.metrics_addr() {
        println!("rtk-server metrics on http://{maddr}/metrics (Prometheus text format)");
    }
    if config.chaos.is_some() {
        println!("rtk-server CHAOS injection enabled — answers may be dropped, delayed, or cut");
    }
    server.run().map_err(|e| format!("serve: {e}"))
}

/// Loads one shard of a sharded snapshot as a backend engine
/// (`--shard-only`): `--index` must be a bare index snapshot (`RTKMANI1`
/// manifest, or legacy `RTKINDX1` for `--shard 0`) and `--graph` is
/// required — every backend walks the full graph even though it holds only
/// its shard's states.
fn load_shard_engine(args: &Parsed) -> Result<ShardEngine, String> {
    let index_path = args
        .get("index")
        .ok_or_else(|| "serve: --index <file> is required".to_string())?;
    let shard_id = args.get_num("shard", 0usize)?;
    let graph_path = args.get("graph").ok_or_else(|| {
        "serve --shard-only: --graph <file> is required (backends hold the full graph)".to_string()
    })?;
    let graph = super::load_graph(graph_path)?;
    let slice = rtk_index::storage::load_shard_slice_path(index_path, shard_id)
        .map_err(|e| format!("serve: shard {shard_id} of {index_path:?}: {e}"))?;
    ShardEngine::from_parts(graph, slice).map_err(|e| format!("serve: {e}"))
}

/// Loads the engine from `--index`, which may be either an engine snapshot
/// (`RTKENGN1`: graph + index in one file, written by `ReverseTopkEngine::
/// save_path`) or a bare index (`RTKINDX1`) paired with `--graph`.
fn load_engine(args: &Parsed) -> Result<ReverseTopkEngine, String> {
    let index_path = args
        .get("index")
        .ok_or_else(|| "serve: --index <file> is required".to_string())?;
    let mut magic = [0u8; 8];
    std::fs::File::open(index_path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map_err(|e| format!("serve: cannot read {index_path:?}: {e}"))?;

    if &magic == b"RTKENGN1" {
        return ReverseTopkEngine::load_path(index_path)
            .map_err(|e| format!("serve: engine snapshot load: {e}"));
    }
    let graph_path = args.get("graph").ok_or_else(|| {
        format!("serve: {index_path:?} is a bare index; add --graph <file> (or pass an engine snapshot)")
    })?;
    let graph = super::load_graph(graph_path)?;
    let index =
        rtk_index::storage::load_path(index_path).map_err(|e| format!("serve: index load: {e}"))?;
    ReverseTopkEngine::from_parts(graph, index).map_err(|e| format!("serve: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::TransitionMatrix;
    use rtk_index::{HubSelection, IndexConfig, ReverseIndex};

    #[test]
    fn load_engine_accepts_both_formats() {
        let dir = std::env::temp_dir().join("rtk_cli_test_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let g = rtk_datasets::toy_graph();
        let gpath = dir.join("g.rtkg");
        super::super::save_graph(&g, gpath.to_str().unwrap()).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 3,
            hub_selection: HubSelection::DegreeBased { b: 1 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let ipath = dir.join("g.rtki");
        rtk_index::storage::save_path(&index, &ipath).unwrap();

        // Bare index + graph.
        let argv: Vec<String> = vec![
            "--index".into(),
            ipath.to_str().unwrap().into(),
            "--graph".into(),
            gpath.to_str().unwrap().into(),
        ];
        let engine = load_engine(&Parsed::parse(&argv).unwrap()).unwrap();
        assert_eq!(engine.node_count(), 6);

        // Engine snapshot.
        let epath = dir.join("g.rtke");
        engine.save_path(&epath).unwrap();
        let argv: Vec<String> = vec!["--index".into(), epath.to_str().unwrap().into()];
        let engine = load_engine(&Parsed::parse(&argv).unwrap()).unwrap();
        assert_eq!(engine.node_count(), 6);

        // Bare index without --graph: a helpful error.
        let argv: Vec<String> = vec!["--index".into(), ipath.to_str().unwrap().into()];
        let err = match load_engine(&Parsed::parse(&argv).unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("bare index without --graph should fail"),
        };
        assert!(err.contains("--graph"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_flag_errors() {
        let err = run(&Parsed::parse(&[]).unwrap()).unwrap_err();
        assert!(err.contains("--index"), "{err}");
    }
}
