//! `rtk query` — run a reverse top-k search against a saved index.

use crate::args::Parsed;
use rtk_graph::TransitionMatrix;
use rtk_query::{ApproxParams, BoundMode, QueryEngine, QueryOptions};

/// Parses the shared `--approx <eps> [--approx-walks N] [--approx-seed S]`
/// flag family (used by `rtk query` and `rtk remote query`).
pub(crate) fn approx_from_args(args: &Parsed) -> Result<Option<ApproxParams>, String> {
    let Some(raw) = args.get("approx") else { return Ok(None) };
    let epsilon: f64 = raw
        .parse()
        .map_err(|_| "query: --approx expects an error bound like 1e-4".to_string())?;
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err("query: --approx must be finite and non-negative".to_string());
    }
    let walks = args.get_num("approx-walks", ApproxParams::default().walks)?;
    let seed = args.get_num("approx-seed", ApproxParams::default().seed)?;
    Ok(Some(ApproxParams { epsilon, walks, seed }))
}

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let graph_path = args.positional(0, "graph")?;
    let index_path = args.positional(1, "index")?;
    let q: u32 = args
        .get("node")
        .ok_or_else(|| "query: --node <id> is required".to_string())?
        .parse()
        .map_err(|_| "query: --node expects a node id".to_string())?;
    let k = args.get_num("k", 10usize)?;
    let threads = args.get_num("threads", 0usize)?;

    let graph = super::load_graph(graph_path)?;
    let transition = TransitionMatrix::new(&graph);
    let mut index =
        rtk_index::storage::load_path(index_path).map_err(|e| format!("index load: {e}"))?;

    let options = QueryOptions {
        update_index: args.has("update"),
        bound_mode: if args.has("strict") { BoundMode::Strict } else { BoundMode::PaperFaithful },
        approximate: args.has("approximate"),
        query_threads: threads,
        approx: approx_from_args(args)?,
        ..Default::default()
    };
    let mut session = QueryEngine::new(&index);
    let result = session
        .query(&transition, &mut index, q, k, &options)
        .map_err(|e| format!("query: {e}"))?;

    println!("reverse top-{k} of node {q}: {} result(s)", result.len());
    for (u, p) in result.nodes().iter().zip(result.proximities()) {
        println!("  node {u}  (p_u(q) = {p:.6})");
    }
    let s = result.stats();
    println!(
        "stats: {} candidates | {} hits | {} pruned | {} refined ({} iterations) | {:.4}s",
        s.candidates,
        s.hits,
        s.pruned_by_lower_bound,
        s.refined_nodes,
        s.refine_iterations,
        s.total_seconds
    );
    if s.approx_active {
        println!(
            "approx: {} estimated | {} exact-refined | {} walks",
            s.approx_estimated, s.approx_exact_refined, s.approx_walks
        );
    }

    if args.has("update") {
        rtk_index::storage::save_path(&index, index_path)
            .map_err(|e| format!("index save: {e}"))?;
        println!("index refinements saved back to {index_path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_index::{HubSelection, IndexConfig, ReverseIndex};

    fn setup(dir: &std::path::Path) -> (String, String) {
        std::fs::create_dir_all(dir).unwrap();
        let g = rtk_datasets::toy_graph();
        let gpath = dir.join("g.rtkg");
        super::super::save_graph(&g, gpath.to_str().unwrap()).unwrap();
        let t = TransitionMatrix::new(&g);
        // Coarse index (the paper's Figure 2 δ = 0.8) so the walkthrough
        // query actually refines — the --update test relies on it.
        let config = IndexConfig {
            max_k: 3,
            bca: rtk_rwr::BcaParams { residue_threshold: 0.8, ..Default::default() },
            hub_selection: HubSelection::DegreeBased { b: 1 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let ipath = dir.join("g.rtki");
        rtk_index::storage::save_path(&index, &ipath).unwrap();
        (gpath.to_str().unwrap().into(), ipath.to_str().unwrap().into())
    }

    #[test]
    fn query_runs_and_optionally_updates() {
        let dir = std::env::temp_dir().join("rtk_cli_test_query");
        let (gpath, ipath) = setup(&dir);
        let argv: Vec<String> = vec![
            gpath.clone(),
            ipath.clone(),
            "--node".into(),
            "0".into(),
            "--k".into(),
            "2".into(),
        ];
        run(&Parsed::parse(&argv).unwrap()).unwrap();

        // With --update the index file is rewritten with refinements.
        let before = std::fs::read(&ipath).unwrap();
        let argv: Vec<String> = vec![
            gpath,
            ipath.clone(),
            "--node".into(),
            "0".into(),
            "--k".into(),
            "2".into(),
            "--update".into(),
        ];
        run(&Parsed::parse(&argv).unwrap()).unwrap();
        let after = std::fs::read(&ipath).unwrap();
        assert_ne!(before, after, "refinements should change the stored index");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_node_flag_errors() {
        let dir = std::env::temp_dir().join("rtk_cli_test_query2");
        let (gpath, ipath) = setup(&dir);
        let argv: Vec<String> = vec![gpath, ipath];
        assert!(run(&Parsed::parse(&argv).unwrap()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
