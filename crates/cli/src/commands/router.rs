//! `rtk router` — the client-facing fan-out process in front of per-shard
//! `rtk serve --shard-only` backends. Several backends may announce the
//! same shard range; they form a replica set the router load-balances
//! across, health-checks, and fails over within (`--hedge-quantile`,
//! `--probe-interval-ms` tune the tail-latency hedging and re-admission
//! probing).

use crate::args::Parsed;
use rtk_server::{Router, RouterConfig};

/// Default listen address when `--addr` is omitted (one above the server's
/// default so both tiers run on one host out of the box).
const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7314";

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    super::init_logging(args).map_err(|e| format!("router: {e}"))?;
    let backends: Vec<String> = args
        .get("backends")
        .ok_or_else(|| {
            "router: --backends <addr,addr,…> is required (one rtk serve --shard-only \
             per shard, any order)"
                .to_string()
        })?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if backends.is_empty() {
        return Err("router: --backends lists no addresses".to_string());
    }
    let addr = args.get("addr").unwrap_or(DEFAULT_ROUTER_ADDR);
    let defaults = RouterConfig::default();
    // `--timeout` bounds every backend interaction: the TCP dial and each
    // per-call socket read/write (handshake included).
    let (connect_timeout, backend_io_timeout) = match args.get("timeout") {
        None => (defaults.connect_timeout, defaults.backend_io_timeout),
        Some(_) => {
            let secs: u64 = args.get_num("timeout", 0u64)?;
            if secs == 0 {
                return Err("router: --timeout expects a positive number of seconds".into());
            }
            let t = std::time::Duration::from_secs(secs);
            (t, t)
        }
    };
    let config = RouterConfig {
        workers: args.get_num("workers", 0usize)?,
        max_frame_bytes: args
            .get_num("max-frame-mib", 16u32)?
            .saturating_mul(1024 * 1024)
            .max(1024),
        max_connections: args
            .get_num("max-connections", rtk_server::server::DEFAULT_MAX_CONNECTIONS)?,
        max_inflight: args.get_num("max-inflight", 0usize)?,
        auth_token: args.get("auth-token").map(str::to_string),
        connect_timeout,
        backend_io_timeout,
        serial_fanout: args.has("serial-fanout"),
        hedge_quantile: {
            let q = args.get_num("hedge-quantile", defaults.hedge_quantile)?;
            if q != 0.0 && !(0.0..1.0).contains(&q) {
                return Err(
                    "router: --hedge-quantile expects a value in [0, 1) (0 disables hedging)"
                        .into(),
                );
            }
            q
        },
        hedge_min_delay: std::time::Duration::from_millis(
            args.get_num("hedge-min-delay-ms", defaults.hedge_min_delay.as_millis() as u64)?,
        ),
        probe_interval: {
            let ms =
                args.get_num("probe-interval-ms", defaults.probe_interval.as_millis() as u64)?;
            if ms == 0 {
                return Err("router: --probe-interval-ms expects a positive number".into());
            }
            std::time::Duration::from_millis(ms)
        },
        health_seed: args.get_num("health-seed", defaults.health_seed)?,
        metrics_addr: args.get("metrics-addr").map(str::to_string),
    };

    let router =
        Router::bind(&backends, addr, config.clone()).map_err(|e| format!("router: {e}"))?;
    println!(
        "rtk router listening on {} ({} workers, {} backend(s) over {} shard(s), {} fan-out{}); \
         stop with `rtk remote shutdown --addr {}` (propagates to backends)",
        router.local_addr(),
        if config.workers == 0 { "all-core".to_string() } else { config.workers.to_string() },
        router.backend_count(),
        router.shard_count(),
        if config.serial_fanout { "serial" } else { "concurrent" },
        if config.auth_token.is_some() { ", auth required" } else { "" },
        router.local_addr()
    );
    if let Some(maddr) = router.metrics_addr() {
        println!("rtk router metrics on http://{maddr}/metrics (Prometheus text format)");
    }
    router.run().map_err(|e| format!("router: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_backends_and_validates_them() {
        let err = run(&Parsed::parse(&[]).unwrap()).unwrap_err();
        assert!(err.contains("--backends"), "{err}");

        // An unreachable backend fails the handshake with a clean message
        // instead of serving a tier that cannot answer.
        let argv: Vec<String> =
            vec!["--backends".into(), "127.0.0.1:1".into(), "--addr".into(), "127.0.0.1:0".into()];
        let err = run(&Parsed::parse(&argv).unwrap()).unwrap_err();
        assert!(err.contains("cannot reach backend"), "{err}");
    }

    #[test]
    fn end_to_end_router_over_shard_backends() {
        use rtk_core::{ReverseTopkEngine, ShardEngine};
        use rtk_index::ShardSlice;
        use rtk_server::{Client, Server, ServerConfig};

        let build = || {
            ReverseTopkEngine::builder(rtk_datasets::toy_graph())
                .max_k(3)
                .hubs_per_direction(1)
                .threads(1)
                .shards(2)
                .build()
                .unwrap()
        };
        let engine = build();
        let mut backends = Vec::new();
        for sid in 0..2 {
            let slice = ShardSlice::from_index(engine.index(), sid).unwrap();
            let shard = ShardEngine::from_parts(rtk_datasets::toy_graph(), slice).unwrap();
            backends.push(
                Server::bind_shard(
                    shard,
                    "127.0.0.1:0",
                    ServerConfig { workers: 2, ..Default::default() },
                )
                .unwrap()
                .spawn(),
            );
        }
        let addrs: Vec<String> = backends.iter().map(|h| h.addr().to_string()).collect();
        let router = Router::bind(&addrs, "127.0.0.1:0", RouterConfig::default()).unwrap().spawn();

        // Paper running example through the tier: reverse top-2 of node 0.
        let mut client = Client::connect(router.addr()).unwrap();
        let r = client.reverse_topk(0, 2, false).unwrap();
        assert_eq!(r.nodes, vec![0, 1, 4]);
        let stats = client.stats().unwrap();
        assert_eq!(stats.shard_count(), 2);

        client.shutdown().unwrap();
        router.join().unwrap();
        for h in backends {
            h.join().unwrap();
        }
    }
}
