//! `rtk generate` — synthesize datasets and parameterized random graphs.

use crate::args::Parsed;
use rtk_graph::gen::{erdos_renyi, rmat, scale_free};
use rtk_graph::gen::{ErdosRenyiConfig, RmatConfig, ScaleFreeConfig};
use rtk_graph::DiGraph;

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let name = args.positional(0, "dataset")?;
    let out = args
        .get("out")
        .ok_or_else(|| "generate: --out <file> is required".to_string())?;
    let graph = build(name)?;
    super::save_graph(&graph, out)?;
    println!("wrote {name}: {} nodes / {} edges -> {out}", graph.node_count(), graph.edge_count());
    Ok(())
}

/// Builds a named dataset or a `family:param:param[:seed]` spec.
pub(crate) fn build(name: &str) -> Result<DiGraph, String> {
    match name {
        "toy" => return Ok(rtk_datasets::toy_graph()),
        "web-cs-small" => return Ok(rtk_datasets::web_cs_small()),
        "web-cs-sim" => return Ok(rtk_datasets::web_cs_sim()),
        "epinions-sim" => return Ok(rtk_datasets::epinions_sim()),
        "web-std-sim" => return Ok(rtk_datasets::web_std_sim()),
        "web-google-sim" => return Ok(rtk_datasets::web_google_sim()),
        "webspam-sim" => {
            return Ok(rtk_datasets::webspam_sim(&Default::default()).graph);
        }
        "dblp-sim" => return Ok(rtk_datasets::dblp_sim(&Default::default()).graph),
        _ => {}
    }

    let parts: Vec<&str> = name.split(':').collect();
    let parse = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>().map_err(|_| format!("generate: bad {what} in {name:?}"))
    };
    match parts.as_slice() {
        ["rmat", n, m] | ["rmat", n, m, _] => {
            let seed = parts.get(3).map_or(Ok(42), |s| parse(s, "seed"))?;
            rmat(&RmatConfig::new(parse(n, "nodes")? as usize, parse(m, "edges")? as usize, seed))
                .map_err(|e| format!("generate: {e}"))
        }
        ["er", n, m] | ["er", n, m, _] => {
            let seed = parts.get(3).map_or(Ok(42), |s| parse(s, "seed"))?;
            erdos_renyi(&ErdosRenyiConfig {
                nodes: parse(n, "nodes")? as usize,
                edges: parse(m, "edges")? as usize,
                seed,
            })
            .map_err(|e| format!("generate: {e}"))
        }
        ["sf", n, d] | ["sf", n, d, _] => {
            let seed = parts.get(3).map_or(Ok(42), |s| parse(s, "seed"))?;
            scale_free(&ScaleFreeConfig::new(
                parse(n, "nodes")? as usize,
                parse(d, "degree")? as usize,
                seed,
            ))
            .map_err(|e| format!("generate: {e}"))
        }
        _ => Err(format!("generate: unknown dataset {name:?} (see `rtk help` for the list)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_datasets_build() {
        assert_eq!(build("toy").unwrap().node_count(), 6);
    }

    #[test]
    fn parameterized_specs_build() {
        assert_eq!(build("rmat:100:300").unwrap().node_count(), 100);
        assert_eq!(build("er:50:100:7").unwrap().node_count(), 50);
        assert_eq!(build("sf:80:3").unwrap().node_count(), 80);
    }

    #[test]
    fn seeds_differentiate() {
        assert_ne!(build("rmat:100:300:1").unwrap(), build("rmat:100:300:2").unwrap());
        assert_eq!(build("rmat:100:300").unwrap(), build("rmat:100:300:42").unwrap());
    }

    #[test]
    fn bad_specs_error() {
        assert!(build("nope").is_err());
        assert!(build("rmat:abc:10").is_err());
        assert!(build("rmat:10").is_err());
    }

    #[test]
    fn end_to_end_write() {
        let dir = std::env::temp_dir().join("rtk_cli_test_gen");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("g.tsv");
        let argv: Vec<String> = vec!["toy".into(), "--out".into(), out.to_str().unwrap().into()];
        run(&Parsed::parse(&argv).unwrap()).unwrap();
        assert!(out.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_out_flag_errors() {
        let argv: Vec<String> = vec!["toy".into()];
        assert!(run(&Parsed::parse(&argv).unwrap()).is_err());
    }
}
