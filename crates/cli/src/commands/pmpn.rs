//! `rtk pmpn` — exact proximities from all nodes *to* a query node (Alg. 2).

use crate::args::Parsed;
use rtk_graph::TransitionMatrix;
use rtk_rwr::{proximity_to, RwrParams};
use rtk_sparse::top_k_of_dense;

pub(crate) fn run(args: &Parsed) -> Result<(), String> {
    let graph_path = args.positional(0, "graph")?;
    let q: u32 = args
        .get("node")
        .ok_or_else(|| "pmpn: --node <id> is required".to_string())?
        .parse()
        .map_err(|_| "pmpn: --node expects a node id".to_string())?;
    let top = args.get_num("top", 10usize)?;
    let alpha = args.get_num("alpha", 0.15f64)?;
    let threads = args.get_num("threads", 0usize)?;

    let graph = super::load_graph(graph_path)?;
    if q as usize >= graph.node_count() {
        return Err(format!("pmpn: node {q} out of range (graph has {})", graph.node_count()));
    }
    let transition = TransitionMatrix::new(&graph);
    let params = RwrParams::with_alpha(alpha).with_threads(threads);
    let (row, report) = proximity_to(&transition, q, &params);
    println!(
        "proximities to node {q} (PMPN, {} iterations, converged: {})",
        report.iterations, report.converged
    );
    println!("largest contributors:");
    for (u, p) in top_k_of_dense(&row, top) {
        println!("  node {u} -> {p:.6}");
    }
    let total: f64 = row.iter().sum();
    println!("sum of all contributions: {total:.4} (= PageRank·n contribution mass)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmpn_runs() {
        let dir = std::env::temp_dir().join("rtk_cli_test_pmpn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.rtkg");
        super::super::save_graph(&rtk_datasets::toy_graph(), path.to_str().unwrap()).unwrap();
        let argv: Vec<String> = vec![
            path.to_str().unwrap().into(),
            "--node".into(),
            "0".into(),
            "--top".into(),
            "3".into(),
        ];
        run(&Parsed::parse(&argv).unwrap()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
