//! `rtk log` — inspect and replay `RTKULOG1` edge-update logs.
//!
//! The update log is the recovery half of the dynamic-graph contract:
//! a server started with `--update-log` appends every applied edge update
//! inside the update's write-lock critical section, so `rtk log replay`
//! over the snapshot the server started from reproduces the live engine
//! **byte for byte** (`RTKENGN1` output, comparable with `cmp`).

use crate::args::Parsed;
use rtk_core::{ReverseTopkEngine, UpdateRecord};

pub(crate) fn run(argv: &[String]) -> Result<(), String> {
    let Some(sub) = argv.first() else {
        return Err("log: expected info|replay".into());
    };
    let args = Parsed::parse(&argv[1..])?;
    match sub.as_str() {
        "info" => info(&args),
        "replay" => replay(&args),
        other => Err(format!("log: expected info|replay, got {other:?}")),
    }
}

/// `rtk log info <log>`: decode the log and summarize it. `--limit N`
/// additionally prints the first N records.
fn info(args: &Parsed) -> Result<(), String> {
    let path = args.positional(0, "log")?;
    let records = rtk_index::storage::load_update_log(path)
        .map_err(|e| format!("log info: cannot read {path:?}: {e}"))?;
    let adds = records.iter().filter(|r| matches!(r, UpdateRecord::AddEdge { .. })).count();
    println!(
        "{path}: RTKULOG1 v1, {} record(s) ({adds} add_edge, {} remove_edge)",
        records.len(),
        records.len() - adds
    );
    let limit = args.get_num("limit", 0usize)?;
    for (i, r) in records.iter().take(limit).enumerate() {
        match r {
            UpdateRecord::AddEdge { from, to, weight } => {
                println!("  [{i}] add_edge    {from} -> {to}  (weight {weight})");
            }
            UpdateRecord::RemoveEdge { from, to } => {
                println!("  [{i}] remove_edge {from} -> {to}");
            }
        }
    }
    if limit > 0 && records.len() > limit {
        println!("  … {} more (raise --limit to see them)", records.len() - limit);
    }
    Ok(())
}

/// `rtk log replay --index <RTKENGN1 snapshot> --log <log> --out <file>`:
/// load the engine snapshot, apply every logged update in order, and save
/// the result. Replay is deterministic, so the output is byte-identical to
/// a `persist` from the live server that wrote the log.
fn replay(args: &Parsed) -> Result<(), String> {
    let index = args
        .get("index")
        .ok_or_else(|| "log replay: --index <engine snapshot> is required".to_string())?;
    let log = args
        .get("log")
        .ok_or_else(|| "log replay: --log <file> is required".to_string())?;
    let out = args
        .get("out")
        .ok_or_else(|| "log replay: --out <file> is required".to_string())?;

    let mut engine = ReverseTopkEngine::load_path(index)
        .map_err(|e| format!("log replay: engine snapshot {index:?}: {e}"))?;
    let records = rtk_index::storage::load_update_log(log)
        .map_err(|e| format!("log replay: cannot read {log:?}: {e}"))?;
    let effect = engine
        .replay_updates(&records)
        .map_err(|e| format!("log replay: applying {log:?} over {index:?}: {e}"))?;
    engine.save_path(out).map_err(|e| format!("log replay: writing {out:?}: {e}"))?;
    println!(
        "replayed {} update(s) over {index}: {} state(s) + {} hub vector(s) recomputed",
        records.len(),
        effect.recomputed_states,
        effect.recomputed_hubs
    );
    println!("wrote {out} (index digest {:016x})", engine.index_digest());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_reproduces_live_updates_byte_for_byte() {
        let dir = std::env::temp_dir().join("rtk_cli_test_log");
        std::fs::create_dir_all(&dir).unwrap();
        // ω = 0: rounded hub vectors persist only an aggregate
        // unrounded-nnz count, which an incremental recompute cannot
        // reproduce exactly — byte-equality legs disable rounding.
        let mut live = ReverseTopkEngine::builder(rtk_datasets::toy_graph())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .rounding_threshold(0.0)
            .build()
            .unwrap();

        // Snapshot the pristine engine, then keep updating it live while
        // logging, exactly as `rtk serve --update-log` would.
        let snapshot = dir.join("seed.rtke");
        live.save_path(&snapshot).unwrap();
        let records = vec![
            UpdateRecord::AddEdge { from: 0, to: 3, weight: 0.5 },
            UpdateRecord::RemoveEdge { from: 0, to: 3 },
            UpdateRecord::AddEdge { from: 4, to: 1, weight: 2.0 },
        ];
        live.replay_updates(&records).unwrap();
        let live_out = dir.join("live.rtke");
        live.save_path(&live_out).unwrap();

        let log = dir.join("updates.rtkl");
        rtk_index::storage::save_update_log(&log, &records).unwrap();
        let replayed_out = dir.join("replayed.rtke");
        let argv: Vec<String> = vec![
            "replay".into(),
            "--index".into(),
            snapshot.to_str().unwrap().into(),
            "--log".into(),
            log.to_str().unwrap().into(),
            "--out".into(),
            replayed_out.to_str().unwrap().into(),
        ];
        run(&argv).unwrap();
        assert_eq!(
            std::fs::read(&live_out).unwrap(),
            std::fs::read(&replayed_out).unwrap(),
            "snapshot + replay(log) must reproduce the live engine byte for byte"
        );

        // `info` decodes the same log.
        let argv: Vec<String> =
            vec!["info".into(), log.to_str().unwrap().into(), "--limit".into(), "2".into()];
        run(&argv).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_clean() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("info|replay"), "{err}");
        let err = run(&["frobnicate".into()]).unwrap_err();
        assert!(err.contains("info|replay"), "{err}");
        let err = run(&["replay".into()]).unwrap_err();
        assert!(err.contains("--index"), "{err}");
        let argv: Vec<String> = vec!["info".into(), "/definitely/not/here.rtkl".into()];
        let err = run(&argv).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
