//! `rtk remote` — query a running `rtk serve` or `rtk router` instance
//! over the wire.
//!
//! Every subcommand is written against the [`RtkService`] trait, not the
//! concrete client: the command logic cannot tell (and does not care)
//! whether the address belongs to a single server or a routed tier —
//! exactly the transparency the trait pins down. The one `Client`-specific
//! surface is `batch --pipeline`, which uses the v4 pipelined submit/wait
//! machinery instead of a single batch frame.

use crate::args::Parsed;
use rtk_server::{Client, RtkService};
use std::time::Duration;

pub(crate) fn run(argv: &[String]) -> Result<(), String> {
    const SUBCOMMANDS: &str = "query|topk|batch|add-edge|remove-edge|persist|stats|ping|shutdown";
    let Some(sub) = argv.first() else {
        return Err(format!("remote: expected {SUBCOMMANDS}"));
    };
    if ![
        "query",
        "topk",
        "batch",
        "add-edge",
        "remove-edge",
        "persist",
        "stats",
        "ping",
        "shutdown",
    ]
    .contains(&sub.as_str())
    {
        return Err(format!("remote: expected {SUBCOMMANDS}, got {sub:?}"));
    }
    let args = Parsed::parse(&argv[1..])?;
    let addr = args.get("addr").unwrap_or(super::serve::DEFAULT_ADDR);
    let mut builder = Client::builder();
    // `--timeout <secs>` bounds the TCP connect and every socket
    // read/write, so a hung server fails the command instead of wedging it.
    if args.get("timeout").is_some() {
        let secs: u64 = args.get_num("timeout", 0u64)?;
        if secs == 0 {
            return Err("remote: --timeout expects a positive number of seconds".into());
        }
        builder = builder.timeout(Duration::from_secs(secs));
    }
    if let Some(token) = args.get("auth-token") {
        builder = builder.auth_token(token);
    }
    let mut client = builder
        .connect(addr)
        .map_err(|e| format!("remote: cannot connect to {addr}: {e}"))?;
    match sub.as_str() {
        "query" => query(&mut client, &args),
        "topk" => topk(&mut client, &args),
        "batch" if args.has("pipeline") => batch_pipelined(&mut client, &args),
        "batch" => batch(&mut client, &args),
        "add-edge" => add_edge(&mut client, &args),
        "remove-edge" => remove_edge(&mut client, &args),
        "persist" => persist(&mut client, &args),
        "stats" if args.has("json") => stats_json(&mut client),
        "stats" => stats(&mut client),
        "ping" => {
            RtkService::ping(&mut client).map_err(|e| format!("remote ping: {e}"))?;
            println!("pong from {addr}");
            Ok(())
        }
        "shutdown" => {
            RtkService::shutdown(&mut client).map_err(|e| format!("remote shutdown: {e}"))?;
            println!("server at {addr} acknowledged shutdown");
            Ok(())
        }
        _ => unreachable!("subcommand validated above"),
    }
}

fn node_flag(args: &Parsed) -> Result<u32, String> {
    args.get("node")
        .ok_or_else(|| "remote: --node <id> is required".to_string())?
        .parse()
        .map_err(|_| "remote: --node expects a node id".to_string())
}

/// Parses `--nodes a,b,c` into `(q, k)` pairs with one shared `k`.
fn node_list(args: &Parsed, k: u32) -> Result<Vec<(u32, u32)>, String> {
    args.get("nodes")
        .ok_or_else(|| "remote batch: --nodes <id,id,…> is required".to_string())?
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map(|q| (q, k))
                .map_err(|_| format!("remote batch: bad node id {s:?}"))
        })
        .collect()
}

fn query(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let q = node_flag(args)?;
    let k = args.get_num("k", 10u32)?;
    let update = args.has("update");
    let traced = args.has("trace");
    let approx =
        super::query::approx_from_args(args).map_err(|e| e.replace("query:", "remote query:"))?;
    let started = std::time::Instant::now();
    let r = match approx {
        Some(a) => svc.reverse_topk_approx(q, k, update, traced, a),
        None if traced => svc.reverse_topk_traced(q, k, update),
        None => svc.reverse_topk(q, k, update),
    }
    .map_err(|e| format!("remote query: {e}"))?;
    let round_trip = started.elapsed().as_secs_f64();
    println!(
        "reverse top-{k} of node {q}{}: {} result(s)",
        if update { " (update mode)" } else { "" },
        r.nodes.len()
    );
    for (u, p) in r.nodes.iter().zip(&r.proximities) {
        println!("  node {u}  (p_u(q) = {p:.6})");
    }
    println!(
        "stats: {} candidates | {} hits | {} refined ({} iterations) | {:.4}s server-side",
        r.candidates, r.hits, r.refined_nodes, r.refine_iterations, r.server_seconds
    );
    if let Some(a) = &r.approx {
        println!(
            "approx: {} estimated | {} exact-refined | {} walks",
            a.estimated, a.exact_refined, a.walks
        );
    }
    if traced {
        match r.trace {
            Some(server_trace) => {
                // Wrap the service's tree in a client-side root so the
                // breakdown also shows what the network + wire cost on
                // top of server-side time.
                let mut root = rtk_obs::TraceSpan::new("client:remote_query", round_trip);
                root.children.push(server_trace);
                println!("\ntrace ({} span(s)):", root.node_count());
                print!("{}", root.render());
            }
            None => println!("\ntrace: the service answered without a trace section"),
        }
    }
    Ok(())
}

fn topk(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let u = node_flag(args)?;
    let k = args.get_num("k", 10u32)?;
    let early = args.has("early");
    let t = svc.topk(u, k, early).map_err(|e| format!("remote topk: {e}"))?;
    println!("top-{k} from node {u}{}:", if early { " (early termination)" } else { "" });
    for (v, p) in t.nodes.iter().zip(&t.scores) {
        println!("  node {v}  (p = {p:.6})");
    }
    Ok(())
}

/// `--nodes a,b,c --k K`: one frozen batch round-trip (a single frame).
fn batch(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let k = args.get_num("k", 10u32)?;
    let queries = node_list(args, k)?;
    let rs = svc.batch(&queries).map_err(|e| format!("remote batch: {e}"))?;
    for r in rs {
        println!("node {}: {} result(s): {:?}", r.query, r.nodes.len(), r.nodes);
    }
    Ok(())
}

/// `--nodes a,b,c --k K --pipeline`: the same queries as individual
/// requests, all in flight at once over this one connection (wire v4) —
/// the server's whole worker pool can work on them concurrently.
fn batch_pipelined(client: &mut Client, args: &Parsed) -> Result<(), String> {
    let k = args.get_num("k", 10u32)?;
    let queries = node_list(args, k)?;
    let rs = client
        .pipeline(&queries, false)
        .map_err(|e| format!("remote batch --pipeline: {e}"))?;
    for r in rs {
        println!("node {}: {} result(s): {:?}", r.query, r.nodes.len(), r.nodes);
    }
    Ok(())
}

/// Parses the `--from U --to V` pair shared by the edge-update verbs.
fn edge_flags(args: &Parsed) -> Result<(u32, u32), String> {
    let parse = |key: &str| -> Result<u32, String> {
        args.get(key)
            .ok_or_else(|| format!("remote: --{key} <node id> is required"))?
            .parse()
            .map_err(|_| format!("remote: --{key} expects a node id"))
    };
    Ok((parse("from")?, parse("to")?))
}

fn print_update(verb: &str, from: u32, to: u32, u: &rtk_server::WireUpdateResult) {
    println!(
        "{verb} edge {from} -> {to}: {} state(s) + {} hub vector(s) recomputed; \
         index digest {:016x}",
        u.recomputed_states, u.recomputed_hubs, u.index_digest
    );
}

/// `add-edge --from U --to V [--weight W]`: one edge insertion through the
/// service — the server mutates its graph and repairs the affected index
/// entries under its write lock, then answers with the recompute effect
/// plus the post-update index digest (replica convergence check).
fn add_edge(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let (from, to) = edge_flags(args)?;
    let weight = args.get_num("weight", 1.0f64)?;
    let u = svc.add_edge(from, to, weight).map_err(|e| format!("remote add-edge: {e}"))?;
    print_update("added", from, to, &u);
    Ok(())
}

/// `remove-edge --from U --to V`: the inverse operation; removing a node's
/// last out-edge is rejected by the server (dangling nodes are forbidden).
fn remove_edge(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let (from, to) = edge_flags(args)?;
    let u = svc.remove_edge(from, to).map_err(|e| format!("remote remove-edge: {e}"))?;
    print_update("removed", from, to, &u);
    Ok(())
}

/// `--out <path>`: flush the server's current (refined) engine snapshot to
/// a path on the *server's* filesystem, under its write lock.
fn persist(svc: &mut impl RtkService, args: &Parsed) -> Result<(), String> {
    let out = args
        .get("out")
        .ok_or_else(|| "remote persist: --out <server-side path> is required".to_string())?;
    let bytes = svc.persist(out).map_err(|e| format!("remote persist: {e}"))?;
    println!(
        "server flushed its engine snapshot to {out} ({:.2} MiB)",
        bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// `stats --json`: the full snapshot as one pretty-printed JSON object —
/// the same serializer the bench harness uses, so dashboards can ingest
/// either source identically.
fn stats_json(svc: &mut impl RtkService) -> Result<(), String> {
    let s = svc.stats().map_err(|e| format!("remote stats: {e}"))?;
    println!("{}", s.to_json().render_pretty());
    Ok(())
}

fn stats(svc: &mut impl RtkService) -> Result<(), String> {
    let s = svc.stats().map_err(|e| format!("remote stats: {e}"))?;
    println!("server stats:");
    println!("  uptime:           {:.1}s", s.uptime_seconds);
    println!("  graph:            {} nodes / {} edges (max k {})", s.nodes, s.edges, s.max_k);
    println!("  workers:          {}", s.workers);
    let shard_sizes: Vec<String> = s
        .shard_nodes
        .iter()
        .zip(&s.shard_bytes)
        .map(|(&n, &b)| format!("{n} nodes/{:.2} MiB", b as f64 / (1024.0 * 1024.0)))
        .collect();
    println!("  shards:           {} [{}]", s.shard_count(), shard_sizes.join(", "));
    if s.shard_lo != 0 || s.shard_hi != s.nodes {
        println!("  shard-only:       serving nodes {}..{}", s.shard_lo, s.shard_hi);
    }
    if s.unhealthy_backends > 0 {
        println!("  DEGRADED:         {} backend(s) unhealthy", s.unhealthy_backends);
    }
    if s.hedged_requests > 0 || s.failovers > 0 {
        println!(
            "  resilience:       {} hedged request(s), {} failover(s)",
            s.hedged_requests, s.failovers
        );
    }
    if s.approx_queries > 0 {
        println!(
            "  approx:           {} query(ies): {} estimated, {} exact-refined, {} walks",
            s.approx_queries, s.approx_estimated, s.approx_exact_refined, s.approx_walks
        );
    }
    println!("  connections:      {} ({} rejected at cap)", s.connections, s.rejected_connections);
    println!(
        "  pipelining:       {} peak in-flight ({} rejected at depth cap)",
        s.inflight_peak, s.inflight_rejections
    );
    println!(
        "  requests:         {} total (ping {}, reverse_topk {}, shard_rtk {}, topk {}, batch {}, add_edge {}, remove_edge {}, persist {}, stats {}, shutdown {})",
        s.total_requests(),
        s.ping,
        s.reverse_topk,
        s.shard_reverse_topk,
        s.topk,
        s.batch,
        s.add_edge,
        s.remove_edge,
        s.persist,
        s.stats,
        s.shutdown
    );
    if s.index_digest != 0 {
        println!("  index digest:     {:016x}", s.index_digest);
    }
    println!(
        "  errors:           {} protocol, {} engine, {} auth",
        s.protocol_errors, s.engine_errors, s.auth_failures
    );
    println!(
        "  latency:          p50 {:.6}s | p95 {:.6}s | p99 {:.6}s | mean {:.6}s | max {:.6}s ({} samples)",
        s.p50_seconds, s.p95_seconds, s.p99_seconds, s.mean_seconds, s.max_seconds, s.latency_count
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refuses_unknown_subcommand_and_dead_server() {
        // No server on a (very likely) unused port: connect must fail fast
        // with a clean message rather than hang.
        let argv: Vec<String> = vec!["ping".into(), "--addr".into(), "127.0.0.1:1".into()];
        let err = run(&argv).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");

        let err = run(&["frobnicate".into()]).unwrap_err();
        assert!(err.contains("expected"), "{err}");

        // A zero timeout is a usage error, not a hang.
        let argv: Vec<String> = vec![
            "ping".into(),
            "--addr".into(),
            "127.0.0.1:1".into(),
            "--timeout".into(),
            "0".into(),
        ];
        let err = run(&argv).unwrap_err();
        assert!(err.contains("--timeout"), "{err}");
    }

    /// The subcommand helpers run against *any* service — here a local
    /// engine, proving the CLI's dispatch layer is transport-agnostic.
    #[test]
    fn helpers_drive_a_local_engine_through_the_trait() {
        let mut engine = rtk_core::ReverseTopkEngine::builder(rtk_datasets::toy_graph())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .build()
            .unwrap();
        let argv: Vec<String> = vec![
            "--node".into(),
            "0".into(),
            "--k".into(),
            "2".into(),
            "--nodes".into(),
            "0,1".into(),
        ];
        let args = Parsed::parse(&argv).unwrap();
        query(&mut engine, &args).unwrap();
        topk(&mut engine, &args).unwrap();
        batch(&mut engine, &args).unwrap();
        stats(&mut engine).unwrap();
    }

    #[test]
    fn end_to_end_against_in_process_server() {
        use rtk_core::ReverseTopkEngine;
        let engine = ReverseTopkEngine::builder(rtk_datasets::toy_graph())
            .max_k(3)
            .hubs_per_direction(1)
            .threads(1)
            .build()
            .unwrap();
        let handle = rtk_server::Server::bind(
            engine,
            "127.0.0.1:0",
            rtk_server::ServerConfig { workers: 1, ..Default::default() },
        )
        .unwrap()
        .spawn();
        let addr = handle.addr().to_string();
        let dir = std::env::temp_dir().join("rtk_cli_test_remote");
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("flush.rtke");

        for argv in [
            vec![
                "ping".to_string(),
                "--addr".into(),
                addr.clone(),
                "--timeout".into(),
                "30".into(),
            ],
            vec![
                "query".into(),
                "--addr".into(),
                addr.clone(),
                "--node".into(),
                "0".into(),
                "--k".into(),
                "2".into(),
            ],
            vec![
                "topk".into(),
                "--addr".into(),
                addr.clone(),
                "--node".into(),
                "2".into(),
                "--k".into(),
                "2".into(),
                "--early".into(),
            ],
            vec![
                "batch".into(),
                "--addr".into(),
                addr.clone(),
                "--nodes".into(),
                "0,1,2".into(),
                "--k".into(),
                "2".into(),
            ],
            vec![
                "batch".into(),
                "--addr".into(),
                addr.clone(),
                "--nodes".into(),
                "0,1,2".into(),
                "--k".into(),
                "2".into(),
                "--pipeline".into(),
            ],
            vec![
                "add-edge".into(),
                "--addr".into(),
                addr.clone(),
                "--from".into(),
                "0".into(),
                "--to".into(),
                "3".into(),
                "--weight".into(),
                "0.5".into(),
            ],
            vec![
                "remove-edge".into(),
                "--addr".into(),
                addr.clone(),
                "--from".into(),
                "0".into(),
                "--to".into(),
                "3".into(),
            ],
            vec![
                "persist".into(),
                "--addr".into(),
                addr.clone(),
                "--out".into(),
                snapshot.to_str().unwrap().into(),
            ],
            vec![
                "query".into(),
                "--addr".into(),
                addr.clone(),
                "--node".into(),
                "0".into(),
                "--k".into(),
                "2".into(),
                "--trace".into(),
            ],
            vec![
                "query".into(),
                "--addr".into(),
                addr.clone(),
                "--node".into(),
                "0".into(),
                "--k".into(),
                "2".into(),
                "--approx".into(),
                "1e-4".into(),
                "--approx-seed".into(),
                "7".into(),
            ],
            vec!["stats".into(), "--addr".into(), addr.clone()],
            vec!["stats".into(), "--addr".into(), addr.clone(), "--json".into()],
            vec!["shutdown".into(), "--addr".into(), addr.clone()],
        ] {
            run(&argv).unwrap_or_else(|e| panic!("{argv:?}: {e}"));
        }
        handle.join().unwrap();
        assert!(snapshot.exists(), "persist must have written the snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }
}
