//! Minimal flag parser: positionals plus `--flag [value]` options.
//!
//! Hand-rolled (no external dependency): the surface is small and the error
//! messages stay domain-specific.

use std::collections::HashMap;

/// Parsed command-line arguments: positional values and `--key value` pairs.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    positionals: Vec<String>,
    flags: HashMap<String, Option<String>>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &[
    "update",
    "strict",
    "early",
    "approximate",
    "shard-only",
    "serial-fanout",
    "pipeline",
    "trace",
    "json",
    "help",
];

impl Parsed {
    /// Splits `argv` into positionals and flags.
    ///
    /// `--key value` binds a value unless `key` is a known boolean flag;
    /// `--key=value` always binds.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Parsed::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(stripped) = a.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    out.flags.insert(k.to_string(), Some(v.to_string()));
                } else if BOOLEAN_FLAGS.contains(&stripped) {
                    out.flags.insert(stripped.to_string(), None);
                } else {
                    let v = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("flag --{stripped} expects a value"))?;
                    if v.starts_with("--") {
                        return Err(format!("flag --{stripped} expects a value, got {v}"));
                    }
                    out.flags.insert(stripped.to_string(), Some(v.clone()));
                    i += 1;
                }
            } else {
                out.positionals.push(a.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Positional argument at `idx`, or an error naming it.
    pub fn positional(&self, idx: usize, name: &str) -> Result<&str, String> {
        self.positionals
            .get(idx)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// All positionals.
    #[allow(dead_code)] // part of the parser's API surface; used in tests
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// True when the boolean flag was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// String value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).and_then(|v| v.as_deref())
    }

    /// Parsed numeric value of a flag, with a default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_positionals_and_flags() {
        let p = Parsed::parse(&argv("graph.tsv --k 5 --update out.bin")).unwrap();
        assert_eq!(p.positional(0, "graph").unwrap(), "graph.tsv");
        assert_eq!(p.positional(1, "out").unwrap(), "out.bin");
        assert_eq!(p.get("k"), Some("5"));
        assert!(p.has("update"));
    }

    #[test]
    fn equals_syntax_binds() {
        let p = Parsed::parse(&argv("--omega=1e-6")).unwrap();
        assert_eq!(p.get("omega"), Some("1e-6"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&argv("--k")).is_err());
        assert!(Parsed::parse(&argv("--k --update")).is_err());
    }

    #[test]
    fn numeric_parsing_with_default() {
        let p = Parsed::parse(&argv("--k 7")).unwrap();
        assert_eq!(p.get_num("k", 10usize).unwrap(), 7);
        assert_eq!(p.get_num("missing", 10usize).unwrap(), 10);
        assert!(p.get_num::<usize>("k", 0).is_ok());
        let bad = Parsed::parse(&argv("--k x")).unwrap();
        assert!(bad.get_num::<usize>("k", 0).is_err());
    }

    #[test]
    fn missing_positional_is_named() {
        let p = Parsed::parse(&argv("only-one")).unwrap();
        let err = p.positional(1, "index").unwrap_err();
        assert!(err.contains("<index>"));
    }
}
