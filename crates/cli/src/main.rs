//! `rtk` — command-line interface for reverse top-k RWR search.
//!
//! ```text
//! rtk generate <dataset> --out graph.rtkg       synthesize a graph
//! rtk stats <graph>                             node/edge/degree summary
//! rtk index build <graph> --out idx.rtki        build the offline index
//! rtk index info <idx.rtki>                     index statistics
//! rtk query <graph> <idx.rtki> --node Q --k K   reverse top-k search
//! rtk topk <graph> --node U --k K [--early]     forward top-k search
//! rtk pmpn <graph> --node Q [--top N]           proximities *to* a node
//! rtk convert <in> <out>                        tsv <-> binary graph formats
//! ```
//!
//! Graph files ending in `.tsv`/`.txt`/`.edges` are read/written as TSV edge
//! lists; anything else uses the versioned binary format.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Through the structured log layer (a JSON line on stderr, or
            // the --log-file sink if a serving command installed one), so
            // CLI failures land in the same stream as server events.
            rtk_obs::log_event(rtk_obs::Level::Error, "rtk", &e, &[]);
            ExitCode::FAILURE
        }
    }
}
