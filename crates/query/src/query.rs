//! The Online Query algorithm — Algorithm 4 (paper §4.2).
//!
//! # Two-phase parallel execution, fanned out per shard
//!
//! A query runs as **PMPN → screen → commit**:
//!
//! 1. PMPN computes `p_*(q)` with its sparse matrix–vector products spread
//!    over [`QueryOptions::query_threads`] workers;
//! 2. the **screen phase** runs in two passes on the shared [`WorkerPool`]:
//!    *classify* fans the cheap bound checks out over shard-aligned,
//!    degree-balanced chunks (a chunk never crosses a shard boundary), then
//!    *refine* visits the undecided candidates in descending upper-bound
//!    order — loosest bounds first. Each worker owns a private
//!    [`BcaEngine`] + [`Materializer`] (recycled across queries through a
//!    [`ScratchPool`]) and refines candidates on *private copies* of their
//!    [`NodeState`] — the shared index is only read;
//! 3. the **commit phase** (update mode only) serially merges every refined
//!    copy back into the owning shards by node id — the cross-shard merge.
//!
//! Per-node screening decisions depend only on that node's stored state and
//! the PMPN vector, never on another node's refinement, so the result set,
//! the statistics, and the post-query index are **identical for every
//! thread count and every shard count** — asserted by the
//! `parallel_determinism` and `shard_determinism` integration suites.

use crate::error::QueryError;
use crate::upper_bound::upper_bound_kth;
use rtk_approx::{ApproxParams, BidirEstimator};
use rtk_graph::{resolve_threads, DiGraph, TransitionMatrix};
use rtk_index::{refine_state, HubMatrix, IndexShard, Materializer, NodeState, ReverseIndex};
use rtk_rwr::bca::{BcaEngine, BcaStop, PropagationStrategy};
use rtk_rwr::pmpn::proximity_to;
use rtk_rwr::power::proximity_from;
use rtk_rwr::{BcaParams, HubSet, RwrParams};
use rtk_sparse::{ScratchPool, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Residual mass below which a node's bounds are treated as exact.
const EXACT_RESIDUAL_EPS: f64 = 1e-12;

/// Nodes claimed per worker fetch during the screen phase
/// ([`ChunkStrategy::NodeCount`]). Small enough to balance the heavy
/// refinement tail (one hard candidate can cost thousands of BCA iterations
/// while its neighbors cost none), large enough to amortize the atomic
/// counter.
const SCREEN_CHUNK: usize = 16;

/// Target weight per screen chunk ([`ChunkStrategy::EdgeBalanced`]), where
/// node `u` weighs `1 + out_degree(u)` — its bound checks plus the edges a
/// refinement would push along. Chosen so chunks carry about the same
/// *work* as `SCREEN_CHUNK` nodes do on a mean-degree-6 graph; on skewed
/// (power-law) graphs it keeps a hub node from making one chunk orders of
/// magnitude heavier than the rest.
const SCREEN_CHUNK_EDGES: usize = 96;

/// Tie tolerance for membership comparisons (`p_u(q) ≥ p̂_u(k)`).
///
/// The definitional test compares two real numbers that are frequently
/// *identical* — whenever `q` itself is the k-th ranked node of `u`, the
/// proximity equals the threshold exactly. Different engines compute the two
/// sides by different methods (PMPN vs. forward power iteration vs. BCA),
/// each within `ε ≈ 1e-10` of the truth, so a strict `≥` would let that
/// noise decide. All engines in this crate — OQ, brute force, IBF, FBF —
/// treat values closer than `TIE_EPSILON` as equal, making results
/// well-defined and mutually consistent.
pub const TIE_EPSILON: f64 = 1e-9;

/// What a shard-scoped query hands back: the partial answer, the per-node
/// refinement commits it produced, and — when `want_pmpn` asked for it —
/// the solved PMPN vector for router sharing
/// ([`QueryEngine::query_shard_with_pmpn`]).
pub type ShardQueryOutput = (QueryResult, Vec<(u32, NodeState)>, Option<Vec<f64>>);

/// How the screen scan is cut into work units (within each shard range).
///
/// A pure scheduling knob: per-node screening decisions are independent, so
/// the chunk plan — like the thread count — may only change wall time,
/// never answers (`tests/parallel_determinism.rs` pins this down).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkStrategy {
    /// Chunk boundaries placed so each chunk covers roughly
    /// `SCREEN_CHUNK_EDGES` out-edges — degree-balanced work units, the
    /// default (skewed graphs schedule evenly).
    EdgeBalanced,
    /// Fixed `SCREEN_CHUNK`-node chunks — the legacy layout, kept as an
    /// explicit axis for determinism tests and benches.
    NodeCount,
}

/// How residual mass is accounted for in the bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundMode {
    /// The paper's accounting: residual = `‖r‖₁`. Hub rounding deficits are
    /// ignored, so with a coarse `ω` a borderline node can be misclassified —
    /// exactly the accuracy/space trade-off of Figure 9.
    PaperFaithful,
    /// Sound accounting: residual = `‖r‖₁ + Σ_h s(h)·d_h`. Results are exact
    /// for any rounding threshold, at the cost of extra refinement.
    Strict,
}

/// Options controlling one reverse top-k query.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Write refined node states back into the index (paper `update` mode).
    pub update_index: bool,
    /// Residual accounting (see [`BoundMode`]).
    pub bound_mode: BoundMode,
    /// PMPN parameters (`α` is overridden by the index's `α`, and the SpMV
    /// thread count by [`Self::query_threads`]).
    pub rwr: RwrParams,
    /// BCA iterations per refinement step (Alg. 4 runs 1; larger values
    /// trade bound tightness checks for fewer materializations).
    pub refine_iterations: u32,
    /// Approximate mode (paper §5.3): skip refinement entirely and return
    /// only the nodes whose bounds decide immediately — the "hits" plus the
    /// exact-bound nodes. A subset of the exact answer; on the paper's web
    /// graphs hits ≈ results, so recall stays high while the refinement cost
    /// disappears.
    pub approximate: bool,
    /// Worker threads for the query hot path (`0` = all cores, the default).
    /// Governs both the PMPN matrix–vector products and the screen phase of
    /// a single query, and the fan-out width of
    /// [`QueryEngine::query_batch`]. Results are identical for any value.
    pub query_threads: usize,
    /// How the screen scan is cut into work units (see [`ChunkStrategy`]).
    /// Results are identical for any value.
    pub chunking: ChunkStrategy,
    /// Bounded-error approximate screen (the `rtk-approx` subsystem): when
    /// set with `epsilon > 0`, the exact PMPN solve is replaced by a
    /// bidirectional estimate — a backward residue push from `q` with
    /// deterministic radius `ε/2` plus seeded forward walks per surviving
    /// candidate — and undecided candidates stop refining once their top-k
    /// boundary is pinned to a window of width ε, deciding at the midpoint.
    /// The answer's node set then differs from the exact answer only on
    /// nodes whose true proximity lies within ε of their decision boundary.
    /// `Some` with `epsilon == 0` (and `None`) run the exact path,
    /// byte-for-byte. Distinct from [`Self::approximate`], the paper's
    /// §5.3 drop-mode, which offers no bound.
    pub approx: Option<ApproxParams>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            update_index: true,
            bound_mode: BoundMode::PaperFaithful,
            rwr: RwrParams::default(),
            refine_iterations: 1,
            approximate: false,
            query_threads: 0,
            chunking: ChunkStrategy::EdgeBalanced,
            approx: None,
        }
    }
}

/// Per-query diagnostics (Figures 5–7 are built from these).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryStats {
    /// Nodes that survived the initial lower-bound prune (paper's "cand").
    pub candidates: usize,
    /// Candidates confirmed by their *first* upper-bound check ("hits").
    pub hits: usize,
    /// Nodes pruned by the initial lower-bound test.
    pub pruned_by_lower_bound: usize,
    /// Candidates that needed at least one refinement iteration.
    pub refined_nodes: usize,
    /// Total BCA iterations spent refining.
    pub refine_iterations: u64,
    /// Strict-mode nodes whose bounds could not close (hub-rounding deficit)
    /// and were resolved by one exact forward solve.
    pub exact_fallbacks: usize,
    /// PMPN iterations (step 1 of the query).
    pub pmpn_iterations: u32,
    /// Seconds spent in PMPN.
    pub pmpn_seconds: f64,
    /// Seconds spent screening/refining (step 2).
    pub screen_seconds: f64,
    /// Total query seconds.
    pub total_seconds: f64,
    /// Whether the bounded-error approximate screen ran for this query
    /// ([`QueryOptions::approx`] with `epsilon > 0`).
    pub approx_active: bool,
    /// Approx mode: candidates classified from the bidirectional estimate
    /// alone (envelope checks, walk estimates, ε-window midpoint calls).
    pub approx_estimated: u64,
    /// Approx mode: candidates inside the ε-band whose decision came from
    /// the exact refinement machinery.
    pub approx_exact_refined: u64,
    /// Approx mode: forward walks simulated.
    pub approx_walks: u64,
    /// Approx mode: seconds spent building the backward-push estimator
    /// (the approximate analog of the PMPN solve).
    pub approx_build_seconds: f64,
}

impl QueryStats {
    /// Folds a worker's partial counters into this total.
    fn absorb(&mut self, other: &QueryStats) {
        self.candidates += other.candidates;
        self.hits += other.hits;
        self.pruned_by_lower_bound += other.pruned_by_lower_bound;
        self.refined_nodes += other.refined_nodes;
        self.refine_iterations += other.refine_iterations;
        self.exact_fallbacks += other.exact_fallbacks;
        self.approx_active |= other.approx_active;
        self.approx_estimated += other.approx_estimated;
        self.approx_exact_refined += other.approx_exact_refined;
        self.approx_walks += other.approx_walks;
    }

    /// Rebuilds the two-phase breakdown as a span tree named `name`:
    /// `pmpn_solve` → `screen` → `commit` children, positioned end to end
    /// so their durations sum exactly to the root's. Built entirely from
    /// timings every query records anyway — calling this adds no clock
    /// reads, so traced and untraced runs execute identically.
    pub fn to_trace(&self, name: &str) -> rtk_obs::TraceSpan {
        use rtk_obs::TraceSpan;
        let mut pmpn = TraceSpan::new("pmpn_solve", self.pmpn_seconds)
            .annotate("iterations", self.pmpn_iterations.to_string());
        pmpn.start_seconds = 0.0;
        let mut screen = TraceSpan::new("screen", self.screen_seconds)
            .annotate("candidates", self.candidates.to_string())
            .annotate("hits", self.hits.to_string())
            .annotate("pruned", self.pruned_by_lower_bound.to_string())
            .annotate("refined_nodes", self.refined_nodes.to_string())
            .annotate("refine_iterations", self.refine_iterations.to_string());
        if self.exact_fallbacks > 0 {
            screen = screen.annotate("exact_fallbacks", self.exact_fallbacks.to_string());
        }
        if self.approx_active {
            // The approx sub-span sits under the screen phase: the backward
            // push runs where PMPN would, but the walk + ε-band work is what
            // the screen spends its time on.
            let mut approx = TraceSpan::new("approx_screen", self.approx_build_seconds)
                .annotate("estimated", self.approx_estimated.to_string())
                .annotate("exact_refined", self.approx_exact_refined.to_string())
                .annotate("walks", self.approx_walks.to_string());
            approx.start_seconds = 0.0;
            screen.children.push(approx);
        }
        screen.start_seconds = self.pmpn_seconds;
        // Whatever the total holds beyond the two measured phases (commit
        // of refinements, result assembly) becomes the tail span.
        let commit_seconds =
            (self.total_seconds - self.pmpn_seconds - self.screen_seconds).max(0.0);
        let mut commit = TraceSpan::new("commit", commit_seconds);
        commit.start_seconds = self.pmpn_seconds + self.screen_seconds;
        let mut root =
            TraceSpan::new(name, self.pmpn_seconds + self.screen_seconds + commit_seconds);
        root.children = vec![pmpn, screen, commit];
        root
    }
}

/// The result of a reverse top-k query.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    query: u32,
    k: usize,
    nodes: Vec<u32>,
    proximities: Vec<f64>,
    stats: QueryStats,
}

impl QueryResult {
    /// The query node.
    pub fn query(&self) -> u32 {
        self.query
    }

    /// The `k` this query used.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Result nodes in ascending id order: every `u` with `p_u(q) ≥ p̂_u(k)`.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// `p_u(q)` for each result node (parallel to [`Self::nodes`]).
    pub fn proximities(&self) -> &[f64] {
        &self.proximities
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the result set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `node` is in the result set.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Per-query diagnostics.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }
}

/// Per-worker solver scratch: a BCA engine plus a materializer, both sized
/// to the graph. Recycled across queries through the session's pool.
struct RefineScratch {
    engine: BcaEngine,
    materializer: Materializer,
}

/// A reusable query session: owns a pool of per-thread BCA/materializer
/// scratch so repeated queries allocate almost nothing. Holds no graph
/// borrow — the transition matrix is passed per call.
pub struct QueryEngine {
    nodes: usize,
    hubs: HubSet,
    bca: BcaParams,
    scratch: ScratchPool<RefineScratch>,
}

impl QueryEngine {
    /// Creates a session compatible with `index` (same hub set and BCA
    /// parameters).
    pub fn new(index: &ReverseIndex) -> Self {
        Self::from_parts(index.node_count(), index.hub_matrix(), index.config().bca)
    }

    /// Creates a session from the shared pieces directly — the constructor
    /// for processes that hold a [`rtk_index::ShardSlice`] instead of a
    /// whole [`ReverseIndex`] (multi-process serving backends).
    pub fn from_parts(node_count: usize, hub_matrix: &HubMatrix, bca: BcaParams) -> Self {
        Self {
            nodes: node_count,
            hubs: hub_matrix.hubs().clone(),
            bca,
            scratch: ScratchPool::new(),
        }
    }

    fn make_scratch(&self) -> RefineScratch {
        RefineScratch {
            engine: BcaEngine::new(
                self.hubs.clone(),
                self.bca,
                PropagationStrategy::BatchThreshold,
            ),
            materializer: Materializer::new(self.nodes),
        }
    }

    /// Runs Algorithm 4. With `options.update_index` the refined states are
    /// committed back into `index`; otherwise refinement happens on private
    /// copies and the index is untouched.
    pub fn query(
        &mut self,
        transition: &TransitionMatrix<'_>,
        index: &mut ReverseIndex,
        q: u32,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, QueryError> {
        self.run(transition, QueryTarget::Mutable(index), q, k, options)
    }

    /// Runs Algorithm 4 against a read-only index (always refines copies;
    /// the paper's `no-update` mode).
    pub fn query_frozen(
        &mut self,
        transition: &TransitionMatrix<'_>,
        index: &ReverseIndex,
        q: u32,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, QueryError> {
        let mut opts = *options;
        opts.update_index = false;
        self.run(transition, QueryTarget::Frozen(index), q, k, &opts)
    }

    /// Runs many *independent* queries against a frozen index, fanning them
    /// across [`QueryOptions::query_threads`] workers. The thread budget is
    /// divided, not fixed: with more queries than threads each query runs
    /// serially (the budget buys throughput), while a batch *narrower* than
    /// the budget hands each query its `threads / batch` share for its own
    /// PMPN + screen fan-out — a 2-query batch on 8 threads uses all 8.
    ///
    /// Always the paper's `no-update` mode: concurrent queries never observe
    /// each other's refinements, so `results[i]` equals what
    /// [`Self::query_frozen`] returns for `queries[i]`, in input order —
    /// for every thread budget.
    pub fn query_batch(
        &self,
        transition: &TransitionMatrix<'_>,
        index: &ReverseIndex,
        queries: &[(u32, usize)],
        options: &QueryOptions,
    ) -> Result<Vec<QueryResult>, QueryError> {
        let n = transition.node_count();
        if index.node_count() != n {
            return Err(QueryError::GraphMismatch {
                index_nodes: index.node_count(),
                graph_nodes: n,
            });
        }
        for &(q, k) in queries {
            if k == 0 || k > index.max_k() {
                return Err(QueryError::KOutOfRange { k, max_k: index.max_k() });
            }
            if q as usize >= n {
                return Err(QueryError::NodeOutOfRange { node: q, node_count: n });
            }
        }

        let threads = resolve_threads(options.query_threads);
        let workers = threads.min(queries.len().max(1));
        let per_query = QueryOptions {
            update_index: false,
            query_threads: (threads / workers.max(1)).max(1),
            ..*options
        };
        let screen_scope = ScreenScope::full(index);
        let mut slots: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        if workers <= 1 {
            for (slot, &(q, k)) in slots.iter_mut().zip(queries) {
                let (result, _, _) = execute_query(
                    self,
                    transition,
                    &screen_scope,
                    q,
                    k,
                    &per_query,
                    per_query.query_threads,
                    false,
                    None,
                    false,
                );
                *slot = Some(result);
            }
        } else {
            let next = AtomicUsize::new(0);
            let collected = std::sync::Mutex::new(Vec::with_capacity(workers));
            WorkerPool::global().scope(|pool| {
                for _ in 0..workers {
                    let next = &next;
                    let per_query = &per_query;
                    let screen_scope = &screen_scope;
                    let collected = &collected;
                    pool.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            let (q, k) = queries[i];
                            let (result, _, _) = execute_query(
                                self,
                                transition,
                                screen_scope,
                                q,
                                k,
                                per_query,
                                per_query.query_threads,
                                false,
                                None,
                                false,
                            );
                            local.push((i, result));
                        }
                        collected.lock().expect("batch results poisoned").push(local);
                    });
                }
            });
            for chunk in collected.into_inner().expect("batch results poisoned") {
                for (i, result) in chunk {
                    debug_assert!(slots[i].is_none());
                    slots[i] = Some(result);
                }
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("query result missing after batch"))
            .collect())
    }

    /// Runs the shard-scoped slice of a reverse top-k query: PMPN over the
    /// whole graph, then the screen phase over **only** `shard`'s node
    /// range. Returns the partial result (result nodes, proximities, and
    /// counter statistics for that range alone) plus the refined private
    /// states of the range — the caller decides whether to commit them back
    /// into the shard (update mode) or drop them (frozen mode).
    ///
    /// This is the unit of work a multi-process backend executes: running
    /// it once per shard of an index and merging — partial results
    /// concatenated in shard order, counters summed — reproduces
    /// [`Self::query`] / [`Self::query_frozen`] bitwise, because per-node
    /// screening decisions are independent and every shard computes the
    /// same PMPN vector. `max_k` is the owning index's `K` (bounds `k`).
    #[allow(clippy::too_many_arguments)]
    pub fn query_shard(
        &self,
        transition: &TransitionMatrix<'_>,
        hub_matrix: &HubMatrix,
        alpha: f64,
        max_k: usize,
        shard: &IndexShard,
        q: u32,
        k: usize,
        options: &QueryOptions,
    ) -> Result<(QueryResult, Vec<(u32, NodeState)>), QueryError> {
        let (result, commits, _) = self.query_shard_with_pmpn(
            transition, hub_matrix, alpha, max_k, shard, q, k, options, None, false,
        )?;
        Ok((result, commits))
    }

    /// [`Self::query_shard`] with explicit PMPN sharing: `pmpn` supplies a
    /// precomputed proximity-to-`q` vector (the solve is skipped), and
    /// `want_pmpn` asks for the solved vector back so a router can compute
    /// it once and ship it to every other backend of the same query. Every
    /// backend solves the identical full-graph system, so a shipped vector
    /// is bitwise-equal to a local solve — answers cannot change.
    ///
    /// The returned vector is `None` when `want_pmpn` is false, when a
    /// vector was not produced (approx mode has no exact PMPN), and the
    /// supplied vector is rejected with [`QueryError::GraphMismatch`] when
    /// its length disagrees with the graph.
    #[allow(clippy::too_many_arguments)]
    pub fn query_shard_with_pmpn(
        &self,
        transition: &TransitionMatrix<'_>,
        hub_matrix: &HubMatrix,
        alpha: f64,
        max_k: usize,
        shard: &IndexShard,
        q: u32,
        k: usize,
        options: &QueryOptions,
        pmpn: Option<&[f64]>,
        want_pmpn: bool,
    ) -> Result<ShardQueryOutput, QueryError> {
        let started = Instant::now();
        let n = transition.node_count();
        if k == 0 || k > max_k {
            return Err(QueryError::KOutOfRange { k, max_k });
        }
        if q as usize >= n {
            return Err(QueryError::NodeOutOfRange { node: q, node_count: n });
        }
        if (shard.node_hi() as usize) > n {
            return Err(QueryError::GraphMismatch {
                index_nodes: shard.node_hi() as usize,
                graph_nodes: n,
            });
        }
        if let Some(v) = pmpn {
            if v.len() != n {
                return Err(QueryError::GraphMismatch { index_nodes: v.len(), graph_nodes: n });
            }
        }
        let threads = resolve_threads(options.query_threads);
        let want_commits = options.update_index;
        let scope = ScreenScope::shard(alpha, hub_matrix, shard);
        let (mut result, commits, pmpn_out) = execute_query(
            self,
            transition,
            &scope,
            q,
            k,
            options,
            threads,
            want_commits,
            pmpn,
            want_pmpn,
        );
        result.stats.total_seconds = started.elapsed().as_secs_f64();
        Ok((result, commits, pmpn_out))
    }

    fn run(
        &mut self,
        transition: &TransitionMatrix<'_>,
        mut target: QueryTarget<'_>,
        q: u32,
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryResult, QueryError> {
        let started = Instant::now();
        let n = transition.node_count();
        {
            let index = target.as_ref();
            if index.node_count() != n {
                return Err(QueryError::GraphMismatch {
                    index_nodes: index.node_count(),
                    graph_nodes: n,
                });
            }
            if k == 0 || k > index.max_k() {
                return Err(QueryError::KOutOfRange { k, max_k: index.max_k() });
            }
            if q as usize >= n {
                return Err(QueryError::NodeOutOfRange { node: q, node_count: n });
            }
        }

        let threads = resolve_threads(options.query_threads);
        let commit = options.update_index && matches!(target, QueryTarget::Mutable(_));
        let (mut result, commits, _) = {
            let scope = ScreenScope::full(target.as_ref());
            execute_query(&*self, transition, &scope, q, k, options, threads, commit, None, false)
        };

        // Commit phase (update mode): serially merge the refined private
        // copies back into the index.
        if commit {
            if let QueryTarget::Mutable(index) = &mut target {
                index.commit_states(commits);
            }
        }

        result.stats.total_seconds = started.elapsed().as_secs_f64();
        Ok(result)
    }
}

/// One worker's screen-phase output.
#[derive(Default)]
struct LocalScreen {
    stats: QueryStats,
    /// `(node, p_u(q))` of confirmed results.
    results: Vec<(u32, f64)>,
    /// Refined private states to merge back in update mode.
    commits: Vec<(u32, NodeState)>,
}

/// The slice of an index one screen pass scans: per-node states over a set
/// of shard-aligned node ranges, plus the shared hub matrix and restart
/// probability.
///
/// Two sources back a scope: a whole [`ReverseIndex`] (every shard's range
/// is scanned — the single-process query) or one [`IndexShard`] (only its
/// range is scanned — the unit a multi-process backend owns). Because
/// per-node screening decisions are independent, the union of per-shard
/// scans equals the full scan: concatenating the shard results in range
/// order and summing their counters reproduces the single-process answer
/// bitwise — the invariant multi-process serving is built on.
pub struct ScreenScope<'a> {
    alpha: f64,
    hub_matrix: &'a HubMatrix,
    states: StateSource<'a>,
    /// Shard-aligned `[lo, hi)` node ranges to scan, ascending and disjoint.
    ranges: Vec<(u32, u32)>,
}

enum StateSource<'a> {
    Index(&'a ReverseIndex),
    Shard(&'a IndexShard),
}

impl<'a> ScreenScope<'a> {
    /// Scope over every shard of `index` — the single-process scan.
    pub fn full(index: &'a ReverseIndex) -> Self {
        let map = index.shard_map();
        let ranges =
            (0..map.shard_count()).map(|i| (map.range(i).start, map.range(i).end)).collect();
        Self {
            alpha: index.config().alpha(),
            hub_matrix: index.hub_matrix(),
            states: StateSource::Index(index),
            ranges,
        }
    }

    /// Scope over exactly one shard: `shard`'s node range, backed by its
    /// states and the shared `hub_matrix`.
    pub fn shard(alpha: f64, hub_matrix: &'a HubMatrix, shard: &'a IndexShard) -> Self {
        let r = shard.range();
        Self {
            alpha,
            hub_matrix,
            states: StateSource::Shard(shard),
            ranges: vec![(r.start, r.end)],
        }
    }

    /// State of node `u`, which must lie inside one of the scope's ranges.
    #[inline]
    fn state(&self, u: u32) -> &NodeState {
        match self.states {
            StateSource::Index(index) => index.state(u),
            StateSource::Shard(shard) => shard.state(u),
        }
    }
}

/// Runs PMPN + the screen phase against a read-only scope. Returns the
/// result (with `total_seconds` still unset), the refined states to commit
/// (empty unless `want_commits`), and — when `want_pmpn` and the exact path
/// ran — the PMPN vector, so a router can ship it to sibling backends
/// instead of having each re-solve it.
///
/// `pmpn_in` supplies a precomputed PMPN vector (skipping the solve); the
/// caller must have validated its length. Every backend solves the
/// identical system, so a shipped vector is bitwise-equal to a local solve
/// and cannot change any answer.
#[allow(clippy::too_many_arguments)]
fn execute_query(
    session: &QueryEngine,
    transition: &TransitionMatrix<'_>,
    scope: &ScreenScope<'_>,
    q: u32,
    k: usize,
    options: &QueryOptions,
    threads: usize,
    want_commits: bool,
    pmpn_in: Option<&[f64]>,
    want_pmpn: bool,
) -> (QueryResult, Vec<(u32, NodeState)>, Option<Vec<f64>>) {
    let approx = options.approx.filter(|a| a.is_active());

    // Step 1 (Alg. 4 line 1): exact proximities to q via PMPN, with the
    // index's restart probability, SpMV spread over the query threads — or,
    // in approx mode, the backward residue push of the bidirectional
    // estimator (deterministic radius ε/2; see `rtk-approx`).
    let pmpn_params = RwrParams { alpha: scope.alpha, threads, ..options.rwr };
    let pmpn_t0 = Instant::now();
    let mut pmpn_iterations = 0u32;
    let mut estimator: Option<BidirEstimator> = None;
    let to_q: Vec<f64> = if let Some(a) = approx {
        estimator = Some(BidirEstimator::build(transition, q, scope.alpha, &a, a.epsilon / 2.0));
        Vec::new()
    } else if let Some(v) = pmpn_in {
        v.to_vec()
    } else {
        let (v, report) = proximity_to(transition, q, &pmpn_params);
        pmpn_iterations = report.iterations;
        v
    };
    let pmpn_seconds = pmpn_t0.elapsed().as_secs_f64();

    // Step 2 (Alg. 4 lines 2–14) runs in two passes so refinement — the
    // expensive tail — can be scheduled by how undecided each candidate is.
    //
    // **Classify** scans every node: workers pull shard-aligned chunks off
    // an atomic counter (degree-balanced by default, see [`ChunkStrategy`])
    // and run the cheap bound tests that need no BCA scratch. Most nodes
    // are pruned or confirmed here; the survivors are recorded with their
    // first upper bound.
    //
    // **Refine** then visits the survivors in descending upper-bound order
    // — the loosest bounds first, so the longest refinements start early
    // and the parallel tail stays short. The order is a pure scheduling
    // choice: candidates refine private copies against the read-only
    // index, so the visit order (like the thread count and the chunk
    // layout) cannot change any answer.
    let screen_t0 = Instant::now();
    let screen_scope = scope;
    let chunks = match options.chunking {
        ChunkStrategy::EdgeBalanced => ChunkPlan::edge_balanced(&scope.ranges, transition.graph()),
        ChunkStrategy::NodeCount => ChunkPlan::from_ranges(&scope.ranges),
    };
    let threads = threads.max(1);
    let classify_threads = threads.min(chunks.total()).max(1);
    let next = AtomicUsize::new(0);
    let mut stats = QueryStats::default();
    let mut results: Vec<(u32, f64)> = Vec::new();
    let mut pending: Vec<PendingCandidate> = Vec::new();
    if classify_threads <= 1 {
        let mut local = LocalClassify::default();
        match &estimator {
            Some(est) => classify_worker_approx(
                &mut local, &chunks, &next, scope, transition, est, k, options,
            ),
            None => classify_worker(&mut local, &chunks, &next, scope, &to_q, k, options),
        }
        stats.absorb(&local.stats);
        results.extend(local.results);
        pending.extend(local.pending);
    } else {
        let collected = std::sync::Mutex::new(Vec::with_capacity(classify_threads));
        WorkerPool::global().scope(|pool| {
            for _ in 0..classify_threads {
                let next = &next;
                let chunks = &chunks;
                let to_q = &to_q;
                let estimator = &estimator;
                let collected = &collected;
                pool.spawn(move || {
                    let mut local = LocalClassify::default();
                    match estimator {
                        Some(est) => classify_worker_approx(
                            &mut local,
                            chunks,
                            next,
                            screen_scope,
                            transition,
                            est,
                            k,
                            options,
                        ),
                        None => classify_worker(
                            &mut local,
                            chunks,
                            next,
                            screen_scope,
                            to_q,
                            k,
                            options,
                        ),
                    }
                    collected.lock().expect("classify results poisoned").push(local);
                });
            }
        });
        for local in collected.into_inner().expect("classify results poisoned") {
            stats.absorb(&local.stats);
            results.extend(local.results);
            pending.extend(local.pending);
        }
    }

    // Loosest bounds first; ties break by node id so the refinement
    // schedule is reproducible no matter how classify chunks interleaved.
    pending.sort_unstable_by(|a, b| b.ub.total_cmp(&a.ub).then(a.node.cmp(&b.node)));

    // Workers already refining in parallel solve strict-mode exact
    // fallbacks serially to avoid oversubscription; a lone refiner keeps
    // the full SpMV thread budget for its fallback solves.
    let refine_threads = threads.min(pending.len().max(1));
    let fallback_params = RwrParams {
        threads: if refine_threads > 1 { 1 } else { pmpn_params.threads },
        ..pmpn_params
    };
    let approx_epsilon = approx.map(|a| a.epsilon);
    let next = AtomicUsize::new(0);
    let locals: Vec<LocalScreen> = if refine_threads <= 1 {
        let mut scratch = session.scratch.take_with(|| session.make_scratch());
        let mut local = LocalScreen::default();
        refine_worker(
            &mut local,
            &mut scratch,
            &pending,
            &next,
            transition,
            scope,
            q,
            k,
            options,
            &fallback_params,
            want_commits,
            approx_epsilon,
        );
        session.scratch.put(scratch);
        vec![local]
    } else {
        let collected = std::sync::Mutex::new(Vec::with_capacity(refine_threads));
        WorkerPool::global().scope(|pool| {
            for _ in 0..refine_threads {
                let next = &next;
                let pending = &pending;
                let fallback_params = &fallback_params;
                let collected = &collected;
                pool.spawn(move || {
                    let mut scratch = session.scratch.take_with(|| session.make_scratch());
                    let mut local = LocalScreen::default();
                    refine_worker(
                        &mut local,
                        &mut scratch,
                        pending,
                        next,
                        transition,
                        screen_scope,
                        q,
                        k,
                        options,
                        fallback_params,
                        want_commits,
                        approx_epsilon,
                    );
                    session.scratch.put(scratch);
                    collected.lock().expect("screen results poisoned").push(local);
                });
            }
        });
        collected.into_inner().expect("screen results poisoned")
    };

    // Serial cross-shard merge: counters add; results and commits sort by
    // node id, so the output is independent of phase interleaving *and* of
    // the shard partition the chunks were derived from.
    let mut commits: Vec<(u32, NodeState)> = Vec::new();
    for local in locals {
        stats.absorb(&local.stats);
        results.extend(local.results);
        commits.extend(local.commits);
    }
    results.sort_unstable_by_key(|&(u, _)| u);
    commits.sort_unstable_by_key(|&(u, _)| u);
    let (nodes, proximities): (Vec<u32>, Vec<f64>) = results.into_iter().unzip();

    stats.pmpn_iterations = pmpn_iterations;
    stats.pmpn_seconds = pmpn_seconds;
    stats.screen_seconds = screen_t0.elapsed().as_secs_f64();
    stats.total_seconds = pmpn_seconds + stats.screen_seconds;
    if approx.is_some() {
        stats.approx_active = true;
        stats.approx_build_seconds = pmpn_seconds;
    }

    // Hand the solved PMPN vector back only when it exists and was computed
    // here or supplied — the approximate path has no exact vector to share.
    let pmpn_out = if want_pmpn && approx.is_none() { Some(to_q) } else { None };
    (QueryResult { query: q, k, nodes, proximities, stats }, commits, pmpn_out)
}

/// Shard-aligned chunking of the screen scan: every shard's node range is
/// cut into its own run of chunks, so no unit of work ever crosses a shard
/// boundary. Per-node decisions are independent, so the partition (like
/// the thread count) cannot change any answer — only how the scan is
/// scheduled.
///
/// Two layouts (see [`ChunkStrategy`]): fixed [`SCREEN_CHUNK`]-node pieces
/// resolved arithmetically in `O(S)` space, or degree-balanced pieces
/// whose boundaries are placed so each chunk covers roughly the same
/// node-plus-out-edge weight — one `u32` per chunk, computed in a single
/// pass over the scan range.
struct ChunkPlan {
    /// Node range per shard, copied out of the shard map.
    ranges: Vec<(u32, u32)>,
    /// Cumulative chunk counts: shard `s` owns global chunk indices
    /// `prefix[s]..prefix[s + 1]`.
    prefix: Vec<usize>,
    /// Chunk start nodes (degree-balanced mode): chunk `ci` starts at
    /// `bounds[ci]` and ends at the next chunk's start, or at its shard's
    /// end for the last chunk of a shard. `None` in fixed-node mode.
    bounds: Option<Vec<u32>>,
}

impl ChunkPlan {
    /// Fixed-size plan ([`ChunkStrategy::NodeCount`]): each shard range is
    /// a run of `SCREEN_CHUNK`-node pieces — the full shard map's ranges
    /// for a single-process scan, or one shard's range for a multi-process
    /// backend.
    fn from_ranges(scan: &[(u32, u32)]) -> Self {
        let mut ranges = Vec::with_capacity(scan.len());
        let mut prefix = Vec::with_capacity(scan.len() + 1);
        let mut total = 0usize;
        prefix.push(0);
        for &(lo, hi) in scan {
            ranges.push((lo, hi));
            total += ((hi - lo) as usize).div_ceil(SCREEN_CHUNK);
            prefix.push(total);
        }
        Self { ranges, prefix, bounds: None }
    }

    /// Degree-balanced plan ([`ChunkStrategy::EdgeBalanced`]): boundaries
    /// are placed so each chunk accumulates at least [`SCREEN_CHUNK_EDGES`]
    /// units of `1 + out_degree` weight (the `1` keeps edge-free stretches
    /// from collapsing into one giant chunk). On skewed graphs the chunks
    /// carry equal *work*: a hub's chunk is small in nodes, not in edges.
    fn edge_balanced(scan: &[(u32, u32)], graph: &DiGraph) -> Self {
        let mut ranges = Vec::with_capacity(scan.len());
        let mut prefix = Vec::with_capacity(scan.len() + 1);
        let mut bounds = Vec::new();
        prefix.push(0);
        for &(lo, hi) in scan {
            ranges.push((lo, hi));
            let mut weight = 0usize;
            for u in lo..hi {
                if weight == 0 {
                    bounds.push(u);
                }
                weight += 1 + graph.out_neighbors(u).len();
                if weight >= SCREEN_CHUNK_EDGES {
                    weight = 0;
                }
            }
            prefix.push(bounds.len());
        }
        Self { ranges, prefix, bounds: Some(bounds) }
    }

    /// Total number of chunks across all shards.
    fn total(&self) -> usize {
        *self.prefix.last().unwrap_or(&0)
    }

    /// Node range of global chunk `ci`, or `None` past the end.
    fn chunk(&self, ci: usize) -> Option<(u32, u32)> {
        if ci >= self.total() {
            return None;
        }
        // The owning shard is the last one whose prefix is ≤ ci.
        let s = self.prefix.partition_point(|&p| p <= ci) - 1;
        let (start, end) = self.ranges[s];
        match &self.bounds {
            Some(bounds) => {
                let lo = bounds[ci];
                let hi = if ci + 1 < self.prefix[s + 1] { bounds[ci + 1] } else { end };
                Some((lo, hi))
            }
            None => {
                let lo = start + ((ci - self.prefix[s]) * SCREEN_CHUNK) as u32;
                Some((lo, (lo + SCREEN_CHUNK as u32).min(end)))
            }
        }
    }
}

/// A candidate the classify pass could not decide: its bounds are open, so
/// it needs refinement. Carries its first upper bound — the refine pass's
/// scheduling key (recomputed identically when refinement starts).
struct PendingCandidate {
    node: u32,
    /// `p_node(q)` from the PMPN vector.
    p_uq: f64,
    /// `upper_bound_kth` over the node's *stored* state.
    ub: f64,
}

/// One classify worker's output: counters, immediately-decided results,
/// and the undecided candidates bound for the refine pass.
#[derive(Default)]
struct LocalClassify {
    stats: QueryStats,
    results: Vec<(u32, f64)>,
    pending: Vec<PendingCandidate>,
}

/// Classify pass: screens chunks pulled off `next` until the plan is
/// exhausted, running only the checks that need no BCA scratch — the
/// pruning tests and the first lower/upper bound evaluation (Alg. 4
/// lines 3–7 plus line 4's first look). Undecided nodes become
/// [`PendingCandidate`]s; the refine pass re-derives these exact values
/// from the same read-only state, so splitting the phases changes no
/// decision.
fn classify_worker(
    local: &mut LocalClassify,
    chunks: &ChunkPlan,
    next: &AtomicUsize,
    scope: &ScreenScope<'_>,
    to_q: &[f64],
    k: usize,
    options: &QueryOptions,
) {
    let strict = options.bound_mode == BoundMode::Strict;
    loop {
        let ci = next.fetch_add(1, Ordering::Relaxed);
        let Some((lo, hi)) = chunks.chunk(ci) else {
            break;
        };
        for u in lo..hi {
            let p_uq = to_q[u as usize];

            // Membership requires strictly positive proximity: a top-k
            // *set* only contains reachable nodes. Without this, every node
            // whose proximity vector has fewer than k non-zeros (its k-th
            // value is 0) would "contain" every query node — Figure 1's
            // shaded cells are always non-zero.
            if p_uq <= TIE_EPSILON {
                local.stats.pruned_by_lower_bound += 1;
                continue;
            }
            // Fast path: prune on the stored lower bound without copying
            // (Alg. 4 line 4's first evaluation).
            let state = scope.state(u);
            if p_uq < state.kth_lower_bound(k) - TIE_EPSILON {
                local.stats.pruned_by_lower_bound += 1;
                continue;
            }
            local.stats.candidates += 1;
            let residual = state.residual_mass(strict);
            if residual <= EXACT_RESIDUAL_EPS {
                // Bounds are exact: p ≥ lb = p^kmax_u ⇒ result (lines 5–7).
                local.results.push((u, p_uq));
                continue;
            }
            let staircase = state.lower_bounds().prefix_values(k);
            let ub = upper_bound_kth(&staircase, residual, k);
            if p_uq >= ub {
                local.stats.hits += 1; // confirmed without any refinement
                local.results.push((u, p_uq));
                continue;
            }
            // Approximate mode stops here: the node is neither an immediate
            // hit nor exactly bounded, so it is dropped (no refinement,
            // paper §5.3's suggested variant).
            if options.approximate {
                continue;
            }
            local.pending.push(PendingCandidate { node: u, p_uq, ub });
        }
    }
}

/// Approximate classify pass (`rtk-approx` subsystem): the exact PMPN value
/// is replaced by the bidirectional estimator's deterministic envelope
/// `est[u] ≤ p_u(q) ≤ est[u] + ρ` (ρ = ε/2). Nodes the envelope alone
/// prunes cost nothing extra; surviving candidates get a walk-refined point
/// estimate `p̃` (still inside the envelope) and are decided against the
/// same stored bounds the exact pass uses. Only candidates whose `p̃` falls
/// strictly between the stored bounds stay pending for the (approximately
/// early-stopped) refinement. Any misclassification requires the true
/// proximity to lie within ε of the node's top-k boundary.
#[allow(clippy::too_many_arguments)]
fn classify_worker_approx(
    local: &mut LocalClassify,
    chunks: &ChunkPlan,
    next: &AtomicUsize,
    scope: &ScreenScope<'_>,
    transition: &TransitionMatrix<'_>,
    est: &BidirEstimator,
    k: usize,
    options: &QueryOptions,
) {
    let strict = options.bound_mode == BoundMode::Strict;
    let rho = est.bound();
    loop {
        let ci = next.fetch_add(1, Ordering::Relaxed);
        let Some((lo, hi)) = chunks.chunk(ci) else {
            break;
        };
        for u in lo..hi {
            let lower = est.lower(u);
            // Positivity prune on the envelope's optimistic edge: even
            // `est + ρ` cannot clear the tie floor.
            if lower + rho <= TIE_EPSILON {
                local.stats.pruned_by_lower_bound += 1;
                continue;
            }
            // Envelope prune against the stored lower bound — the certain
            // misses, decided without a single walk.
            let state = scope.state(u);
            let lb = state.kth_lower_bound(k);
            if lower + rho < lb - TIE_EPSILON {
                local.stats.pruned_by_lower_bound += 1;
                continue;
            }
            local.stats.candidates += 1;
            // Walk-refined point estimate; stays within [lower, lower + ρ].
            let (p_est, walks) = est.estimate(transition, u);
            local.stats.approx_walks += walks;
            if p_est <= TIE_EPSILON || p_est < lb - TIE_EPSILON {
                local.stats.approx_estimated += 1; // estimated miss
                continue;
            }
            let residual = state.residual_mass(strict);
            if residual <= EXACT_RESIDUAL_EPS {
                // Stored bounds are exact: the boundary *is* lb; the
                // estimate already cleared it above.
                local.stats.approx_estimated += 1;
                local.results.push((u, p_est));
                continue;
            }
            let staircase = state.lower_bounds().prefix_values(k);
            let ub = upper_bound_kth(&staircase, residual, k);
            if p_est >= ub {
                local.stats.hits += 1; // confirmed without any refinement
                local.stats.approx_estimated += 1;
                local.results.push((u, p_est));
                continue;
            }
            local.pending.push(PendingCandidate { node: u, p_uq: p_est, ub });
        }
    }
}

/// Refine pass: pulls single pending candidates off `next` (the list is
/// sorted by descending upper bound) and resolves each with
/// [`screen_candidate`] — or, when `approx_epsilon` is set, with the
/// ε-banded [`screen_candidate_approx`]. Candidates are claimed one at a
/// time — the refinement tail is heavy and skewed, so finer granularity
/// beats lower counter traffic here.
#[allow(clippy::too_many_arguments)]
fn refine_worker(
    local: &mut LocalScreen,
    scratch: &mut RefineScratch,
    pending: &[PendingCandidate],
    next: &AtomicUsize,
    transition: &TransitionMatrix<'_>,
    scope: &ScreenScope<'_>,
    q: u32,
    k: usize,
    options: &QueryOptions,
    fallback_params: &RwrParams,
    want_commits: bool,
    approx_epsilon: Option<f64>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(candidate) = pending.get(i) else {
            break;
        };
        match approx_epsilon {
            Some(epsilon) => screen_candidate_approx(
                local,
                scratch,
                transition,
                scope,
                candidate.node,
                candidate.p_uq,
                q,
                k,
                options,
                fallback_params,
                want_commits,
                epsilon,
            ),
            None => screen_candidate(
                local,
                scratch,
                transition,
                scope,
                candidate.node,
                candidate.p_uq,
                q,
                k,
                options,
                fallback_params,
                want_commits,
            ),
        }
    }
}

/// Screens one surviving candidate: bound checks plus refinement on a
/// private copy of its state (Alg. 4 lines 4–13).
#[allow(clippy::too_many_arguments)]
fn screen_candidate(
    local: &mut LocalScreen,
    scratch: &mut RefineScratch,
    transition: &TransitionMatrix<'_>,
    scope: &ScreenScope<'_>,
    u: u32,
    p_uq: f64,
    q: u32,
    k: usize,
    options: &QueryOptions,
    fallback_params: &RwrParams,
    want_commits: bool,
) {
    let strict = options.bound_mode == BoundMode::Strict;
    let base_step = options.refine_iterations.max(1);
    let mut scratch_state: Option<NodeState> = None;

    let mut untouched = true; // no refinement performed yet
    let mut is_result = false;
    let mut advanced = false; // at least one BCA iteration executed
                              // Refinement step size doubles while a candidate stays undecided
                              // (capped): hard candidates need O(100) BCA iterations, and
                              // rematerializing the top-K after every single one would dominate.
                              // Bounds only tighten, so results are unchanged (DESIGN.md §3).
    let mut step = base_step;
    loop {
        // Current view: the private refined copy when one exists, otherwise
        // the index's stored state.
        let (lb, residual, staircase) = {
            let state = scratch_state.as_ref().unwrap_or_else(|| scope.state(u));
            (
                state.kth_lower_bound(k),
                state.residual_mass(strict),
                state.lower_bounds().prefix_values(k),
            )
        };
        if p_uq < lb - TIE_EPSILON {
            break; // pruned (possibly after refinement)
        }
        if residual <= EXACT_RESIDUAL_EPS {
            // Bounds are exact: p ≥ lb = p^kmax_u ⇒ result (lines 5–7).
            is_result = true;
            break;
        }
        let ub = upper_bound_kth(&staircase, residual, k);
        if p_uq >= ub {
            if untouched {
                local.stats.hits += 1; // confirmed without any refinement
            }
            is_result = true;
            break;
        }

        // Approximate mode stops here: the node is neither an immediate hit
        // nor exactly bounded, so it is dropped (no refinement, paper §5.3's
        // suggested variant).
        if options.approximate {
            break;
        }

        // Refine (Alg. 4 line 13) on a lazily-created private copy; update
        // mode merges the copies back during the commit phase.
        if untouched {
            local.stats.refined_nodes += 1;
            untouched = false;
        }
        let refine_stop = BcaStop { residue_norm: 0.0, max_iterations: step };
        step = (step * 2).min(base_step * 64);
        let state = scratch_state.get_or_insert_with(|| scope.state(u).clone());
        let executed = refine_state(
            state,
            transition,
            &mut scratch.engine,
            scope.hub_matrix,
            &mut scratch.materializer,
            &refine_stop,
        );
        if executed == 0 {
            // Residue exhausted but bounds still open. In paper-faithful
            // mode this means the lower bound equals the exact k-th value —
            // decide on it (mirroring the paper's treatment of rounded hub
            // vectors as exact). In strict mode the gap is the hub-rounding
            // deficit, which refinement cannot shrink: resolve exactly with
            // one forward solve so strict results stay sound.
            match options.bound_mode {
                BoundMode::PaperFaithful => {
                    is_result = p_uq >= lb - TIE_EPSILON;
                }
                BoundMode::Strict => {
                    local.stats.exact_fallbacks += 1;
                    let (col, _) = proximity_from(transition, u, fallback_params);
                    let kth = rtk_sparse::dense::kth_largest(&col, k);
                    is_result = col[q as usize] >= kth - TIE_EPSILON;
                }
            }
            break;
        }
        advanced = true;
        local.stats.refine_iterations += u64::from(executed);
    }
    if is_result {
        local.results.push((u, p_uq));
    }
    if want_commits && advanced {
        if let Some(state) = scratch_state {
            local.commits.push((u, state));
        }
    }
}

/// [`screen_candidate`] for the bounded-error approximate path: `p_uq` is
/// the bidirectional estimate `p̃` (within ε/2 of the truth), and the
/// refinement loop gains one extra exit — once the candidate's top-k
/// boundary window `[lb, ub]` is no wider than ε, the membership call is
/// made at the window midpoint instead of refining further. A wrong call
/// then needs `|p̃ − p̂| ≤ ε/2` and `|p − p̃| ≤ ε/2`, so any misclassified
/// node's true margin is at most ε — the error contract. Candidates whose
/// window never narrows to ε are decided by the *exact* machinery exactly
/// as the exact path would (bound crossing, or the strict-mode forward
/// solve), which is the "exact fallback inside the ε-band".
#[allow(clippy::too_many_arguments)]
fn screen_candidate_approx(
    local: &mut LocalScreen,
    scratch: &mut RefineScratch,
    transition: &TransitionMatrix<'_>,
    scope: &ScreenScope<'_>,
    u: u32,
    p_uq: f64,
    q: u32,
    k: usize,
    options: &QueryOptions,
    fallback_params: &RwrParams,
    want_commits: bool,
    epsilon: f64,
) {
    let strict = options.bound_mode == BoundMode::Strict;
    let base_step = options.refine_iterations.max(1);
    let mut scratch_state: Option<NodeState> = None;

    let mut untouched = true;
    let mut is_result = false;
    let mut advanced = false;
    let mut midpoint_call = false; // decided by the ε-window, not by bounds
    let mut step = base_step;
    loop {
        let (lb, residual, staircase) = {
            let state = scratch_state.as_ref().unwrap_or_else(|| scope.state(u));
            (
                state.kth_lower_bound(k),
                state.residual_mass(strict),
                state.lower_bounds().prefix_values(k),
            )
        };
        if p_uq < lb - TIE_EPSILON {
            break; // estimated below the (possibly refined) lower bound
        }
        if residual <= EXACT_RESIDUAL_EPS {
            is_result = true;
            break;
        }
        let ub = upper_bound_kth(&staircase, residual, k);
        if p_uq >= ub {
            if untouched {
                local.stats.hits += 1;
            }
            is_result = true;
            break;
        }
        // ε-window exit: p̂_u(k) ∈ [lb, ub]; once that window fits in ε,
        // call membership at the midpoint and stop paying for refinement.
        if ub - lb <= epsilon {
            is_result = p_uq >= (lb + ub) * 0.5;
            midpoint_call = true;
            break;
        }

        if untouched {
            local.stats.refined_nodes += 1;
            untouched = false;
        }
        let refine_stop = BcaStop { residue_norm: 0.0, max_iterations: step };
        step = (step * 2).min(base_step * 64);
        let state = scratch_state.get_or_insert_with(|| scope.state(u).clone());
        let executed = refine_state(
            state,
            transition,
            &mut scratch.engine,
            scope.hub_matrix,
            &mut scratch.materializer,
            &refine_stop,
        );
        if executed == 0 {
            // Residue exhausted with the window still wider than ε: the
            // remaining gap is hub-rounding deficit. Resolve exactly as the
            // exact path does (lower bound is exact in paper-faithful mode;
            // strict mode runs one exact forward solve).
            match options.bound_mode {
                BoundMode::PaperFaithful => {
                    is_result = p_uq >= lb - TIE_EPSILON;
                }
                BoundMode::Strict => {
                    local.stats.exact_fallbacks += 1;
                    let (col, _) = proximity_from(transition, u, fallback_params);
                    let kth = rtk_sparse::dense::kth_largest(&col, k);
                    is_result = col[q as usize] >= kth - TIE_EPSILON;
                }
            }
            break;
        }
        advanced = true;
        local.stats.refine_iterations += u64::from(executed);
    }
    if midpoint_call {
        local.stats.approx_estimated += 1;
    } else {
        local.stats.approx_exact_refined += 1;
    }
    if is_result {
        local.results.push((u, p_uq));
    }
    if want_commits && advanced {
        if let Some(state) = scratch_state {
            local.commits.push((u, state));
        }
    }
}

/// The index access mode for one query run.
enum QueryTarget<'i> {
    Mutable(&'i mut ReverseIndex),
    Frozen(&'i ReverseIndex),
}

impl QueryTarget<'_> {
    fn as_ref(&self) -> &ReverseIndex {
        match self {
            QueryTarget::Mutable(i) => i,
            QueryTarget::Frozen(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_reverse_topk;
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};
    use rtk_index::{HubSelection, HubSolver, IndexConfig};
    use rtk_rwr::BcaParams;

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn toy_index_config() -> IndexConfig {
        IndexConfig {
            max_k: 3,
            bca: BcaParams { residue_threshold: 0.8, ..Default::default() },
            hub_selection: HubSelection::DegreeBased { b: 1 },
            hub_solver: HubSolver::PowerMethod(RwrParams::default()),
            rounding_threshold: 0.0,
            threads: 1,
            shards: 1,
        }
    }

    #[test]
    fn reproduces_paper_running_example() {
        // §4.2.3, q = node 1 (1-based), k = 2 on the Figure 2 index:
        // nodes 1, 2 are immediate results (hubs, exact bounds);
        // node 3 is pruned by its lower bound (0.24 < 0.27);
        // node 4 needs one refinement, then is pruned (0.19 < 0.23);
        // node 5 is an immediate result (‖r‖ = 0);
        // node 6 is pruned after refinement.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let result = session.query(&t, &mut index, 0, 2, &QueryOptions::default()).unwrap();
        assert_eq!(result.nodes(), &[0, 1, 4]);
        let s = result.stats();
        // Node 3 (0-based 2) pruned by lb: candidates = 5 of 6.
        assert_eq!(s.pruned_by_lower_bound, 1);
        assert_eq!(s.candidates, 5);
        // Nodes 4 and 6 (0-based 3, 5) required refinement.
        assert_eq!(s.refined_nodes, 2);
        assert!(s.refine_iterations >= 2);
        // Update mode: node 4's bound is now the refined 0.23.
        assert!((index.state(3).kth_lower_bound(2) - 0.23).abs() < 5e-3);
    }

    #[test]
    fn proximities_are_reported_for_results() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let result = session.query(&t, &mut index, 0, 2, &QueryOptions::default()).unwrap();
        // p_{q,*} = [0.32 0.24 0.24 0.19 0.20 0.18] (paper): results 0,1,4.
        let expect = [0.32, 0.24, 0.20];
        for (i, (&node, &p)) in result.nodes().iter().zip(result.proximities()).enumerate() {
            let _ = node;
            assert!((p - expect[i]).abs() < 5e-3, "proximity {i}: {p}");
        }
        assert!(result.contains(4));
        assert!(!result.contains(2));
        assert_eq!(result.len(), 3);
        assert_eq!(result.k(), 2);
        assert_eq!(result.query(), 0);
    }

    #[test]
    fn frozen_and_update_modes_agree_on_results() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(120, 500, 5)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 10,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            ..Default::default()
        };
        let mut updated = ReverseIndex::build(&t, config.clone()).unwrap();
        let frozen = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&frozen);
        for q in [0u32, 7, 33, 99] {
            for k in [1usize, 3, 10] {
                let a = session.query(&t, &mut updated, q, k, &QueryOptions::default()).unwrap();
                let b = session.query_frozen(&t, &frozen, q, k, &QueryOptions::default()).unwrap();
                assert_eq!(a.nodes(), b.nodes(), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn approx_disagreements_stay_inside_the_epsilon_band() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(120, 500, 5)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 10,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let epsilon = 1e-4;
        let opts = QueryOptions {
            approx: Some(ApproxParams { epsilon, walks: 16, seed: 7 }),
            ..Default::default()
        };
        let exact_params = RwrParams { epsilon: 1e-14, ..Default::default() };
        for q in [0u32, 7, 33] {
            for k in [1usize, 5] {
                let approx = session.query_frozen(&t, &index, q, k, &opts).unwrap();
                assert!(approx.stats().approx_active);
                let exact: std::collections::BTreeSet<u32> =
                    brute_force_reverse_topk(&t, q, k, &exact_params).into_iter().collect();
                let got: std::collections::BTreeSet<u32> = approx.nodes().iter().copied().collect();
                for &u in exact.symmetric_difference(&got) {
                    // Any disagreement must sit within ε of u's decision
                    // boundary p̂_u(k): |p_u(q) − p̂_u(k)| ≤ ε.
                    let (col, _) = proximity_from(&t, u, &exact_params);
                    let kth = rtk_sparse::dense::kth_largest(&col, k);
                    let margin = (col[q as usize] - kth).abs();
                    assert!(
                        margin <= epsilon + TIE_EPSILON,
                        "q={q} k={k} u={u}: margin {margin:.3e} > ε"
                    );
                }
            }
        }
    }

    #[test]
    fn approx_answers_are_bitwise_stable_across_thread_counts() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(150, 700, 9)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 8,
            hub_selection: HubSelection::DegreeBased { b: 6 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let approx = Some(ApproxParams { epsilon: 1e-3, walks: 24, seed: 42 });
        let base = QueryOptions { approx, query_threads: 1, ..Default::default() };
        let reference = session.query_frozen(&t, &index, 11, 4, &base).unwrap();
        assert!(
            reference.stats().approx_estimated + reference.stats().approx_exact_refined > 0,
            "approx screen should classify at least one candidate"
        );
        for threads in [2usize, 4] {
            let opts = QueryOptions { query_threads: threads, ..base };
            let run = session.query_frozen(&t, &index, 11, 4, &opts).unwrap();
            assert_eq!(run.nodes(), reference.nodes(), "threads={threads}");
            let same = run
                .proximities()
                .iter()
                .zip(reference.proximities())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads={threads}: proximities must be bitwise equal");
        }
    }

    #[test]
    fn inactive_approx_params_take_the_exact_path() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let zero = QueryOptions {
            approx: Some(ApproxParams { epsilon: 0.0, walks: 32, seed: 3 }),
            ..Default::default()
        };
        let a = session.query_frozen(&t, &index, 0, 2, &zero).unwrap();
        let b = session.query_frozen(&t, &index, 0, 2, &QueryOptions::default()).unwrap();
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.proximities(), b.proximities());
        assert!(!a.stats().approx_active, "ε = 0 must not enter the approx screen");
        assert_eq!(a.stats().pmpn_iterations, b.stats().pmpn_iterations);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let params = RwrParams::default();
        for seed in [1u64, 2, 3] {
            let g = rtk_graph::gen::erdos_renyi(&rtk_graph::gen::ErdosRenyiConfig {
                nodes: 60,
                edges: 240,
                seed,
            })
            .unwrap();
            let t = TransitionMatrix::new(&g);
            let config = IndexConfig {
                max_k: 8,
                hub_selection: HubSelection::DegreeBased { b: 3 },
                threads: 1,
                ..Default::default()
            };
            let mut index = ReverseIndex::build(&t, config).unwrap();
            let mut session = QueryEngine::new(&index);
            for q in [0u32, 11, 42] {
                for k in [1usize, 4, 8] {
                    let expected = brute_force_reverse_topk(&t, q, k, &params);
                    let got =
                        session.query(&t, &mut index, q, k, &QueryOptions::default()).unwrap();
                    assert_eq!(got.nodes(), &expected[..], "seed={seed} q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn strict_mode_is_exact_under_aggressive_rounding() {
        let g =
            rtk_graph::gen::scale_free(&rtk_graph::gen::ScaleFreeConfig::new(80, 3, 9)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 6,
            hub_selection: HubSelection::DegreeBased { b: 4 },
            rounding_threshold: 1e-2, // brutal: drops a lot of hub mass
            threads: 1,
            ..Default::default()
        };
        let mut index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let opts = QueryOptions { bound_mode: BoundMode::Strict, ..Default::default() };
        let params = RwrParams::default();
        for q in [0u32, 17, 55] {
            for k in [2usize, 6] {
                let expected = brute_force_reverse_topk(&t, q, k, &params);
                let got = session.query(&t, &mut index, q, k, &opts).unwrap();
                assert_eq!(got.nodes(), &expected[..], "q={q} k={k}");
            }
        }
    }

    #[test]
    fn update_mode_makes_repeat_queries_cheaper() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(200, 900, 12)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 10,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            ..Default::default()
        };
        let mut index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let opts = QueryOptions::default();
        let first = session.query(&t, &mut index, 3, 10, &opts).unwrap();
        let second = session.query(&t, &mut index, 3, 10, &opts).unwrap();
        assert_eq!(first.nodes(), second.nodes());
        assert!(
            second.stats().refine_iterations <= first.stats().refine_iterations,
            "second query should reuse refinements: {} vs {}",
            second.stats().refine_iterations,
            first.stats().refine_iterations
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let r = session.query(&t, &mut index, 1, 2, &QueryOptions::default()).unwrap();
        let s = r.stats();
        assert_eq!(s.candidates + s.pruned_by_lower_bound, 6);
        assert!(s.hits <= s.candidates);
        assert!(r.len() <= s.candidates);
        assert!(s.pmpn_iterations > 0);
        assert!(s.total_seconds >= s.pmpn_seconds);
    }

    #[test]
    fn rejects_invalid_queries() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let opts = QueryOptions::default();
        assert!(matches!(
            session.query(&t, &mut index, 0, 0, &opts),
            Err(QueryError::KOutOfRange { k: 0, max_k: 3 })
        ));
        assert!(matches!(
            session.query(&t, &mut index, 0, 4, &opts),
            Err(QueryError::KOutOfRange { k: 4, max_k: 3 })
        ));
        assert!(matches!(
            session.query(&t, &mut index, 6, 1, &opts),
            Err(QueryError::NodeOutOfRange { node: 6, node_count: 6 })
        ));
    }

    #[test]
    fn rejects_mismatched_graph() {
        // Session built against a 3-node graph + its index, then handed the
        // 6-node toy index: the query must fail cleanly.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index6 = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let other =
            GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)], DanglingPolicy::Error).unwrap();
        let t2 = TransitionMatrix::new(&other);
        let config3 = IndexConfig {
            max_k: 3,
            hub_selection: HubSelection::DegreeBased { b: 1 },
            threads: 1,
            ..Default::default()
        };
        let index3 = ReverseIndex::build(&t2, config3).unwrap();
        let mut session = QueryEngine::new(&index3);
        assert!(matches!(
            session.query(&t2, &mut index6, 0, 1, &QueryOptions::default()),
            Err(QueryError::GraphMismatch { .. })
        ));
    }

    #[test]
    fn approximate_mode_returns_a_high_recall_subset() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(300, 1200, 77)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 10,
            hub_selection: HubSelection::DegreeBased { b: 10 },
            threads: 1,
            ..Default::default()
        };
        let mut index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let approx_opts = QueryOptions { approximate: true, ..Default::default() };
        let mut exact_total = 0usize;
        let mut approx_total = 0usize;
        for q in (0..300u32).step_by(29) {
            let approx = session.query_frozen(&t, &index, q, 10, &approx_opts).unwrap();
            let exact = session.query(&t, &mut index, q, 10, &QueryOptions::default()).unwrap();
            // Approximate results are always a subset of the exact answer …
            for u in approx.nodes() {
                assert!(exact.contains(*u), "q={q}: {u} not in exact result");
            }
            // … and never refine anything.
            assert_eq!(approx.stats().refined_nodes, 0);
            assert_eq!(approx.stats().refine_iterations, 0);
            exact_total += exact.len();
            approx_total += approx.len();
        }
        // Recall should be substantial on web-like graphs (paper: hits ≈
        // results on the web datasets).
        assert!(
            approx_total * 2 >= exact_total,
            "approximate recall too low: {approx_total}/{exact_total}"
        );
    }

    #[test]
    fn every_node_as_query_covers_graph_k_times() {
        // Σ_q |reverse-top-k(q)| = n·k (each node's top-k contributes once
        // per member) — a strong global consistency check of OQ.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let k = 2;
        let total: usize = (0..6u32)
            .map(|q| session.query(&t, &mut index, q, k, &QueryOptions::default()).unwrap().len())
            .sum();
        assert_eq!(total, 6 * k);
    }

    #[test]
    fn explicit_thread_counts_agree_with_serial() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(250, 1100, 31)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 8,
            hub_selection: HubSelection::DegreeBased { b: 6 },
            threads: 1,
            ..Default::default()
        };
        let frozen = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&frozen);
        let serial = QueryOptions { query_threads: 1, ..Default::default() };
        for q in [0u32, 49, 123] {
            let base = session.query_frozen(&t, &frozen, q, 8, &serial).unwrap();
            for threads in [2usize, 4, 8] {
                let opts = QueryOptions { query_threads: threads, ..Default::default() };
                let got = session.query_frozen(&t, &frozen, q, 8, &opts).unwrap();
                assert_eq!(got.nodes(), base.nodes(), "q={q} threads={threads}");
                assert_eq!(got.proximities(), base.proximities(), "q={q} threads={threads}");
                assert_eq!(got.stats().candidates, base.stats().candidates);
                assert_eq!(got.stats().refine_iterations, base.stats().refine_iterations);
            }
        }
    }

    #[test]
    fn query_batch_matches_individual_frozen_queries() {
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(200, 800, 17)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 6,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let queries: Vec<(u32, usize)> =
            (0..40u32).map(|i| ((i * 5) % 200, 1 + (i as usize % 6))).collect();
        for threads in [1usize, 3, 8] {
            let opts = QueryOptions { query_threads: threads, ..Default::default() };
            let batch = session.query_batch(&t, &index, &queries, &opts).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (i, &(q, k)) in queries.iter().enumerate() {
                let single =
                    session.query_frozen(&t, &index, q, k, &QueryOptions::default()).unwrap();
                assert_eq!(batch[i].nodes(), single.nodes(), "i={i} threads={threads}");
                assert_eq!(batch[i].query(), q);
                assert_eq!(batch[i].k(), k);
            }
        }
    }

    #[test]
    fn query_batch_rejects_invalid_queries_upfront() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let session = QueryEngine::new(&index);
        let opts = QueryOptions::default();
        assert!(matches!(
            session.query_batch(&t, &index, &[(0, 2), (1, 0)], &opts),
            Err(QueryError::KOutOfRange { k: 0, .. })
        ));
        assert!(matches!(
            session.query_batch(&t, &index, &[(0, 2), (9, 1)], &opts),
            Err(QueryError::NodeOutOfRange { node: 9, .. })
        ));
        assert!(session.query_batch(&t, &index, &[], &opts).unwrap().is_empty());
    }

    #[test]
    fn chunk_plan_covers_every_node_once_and_respects_shards() {
        // Both layouts must partition the scan exactly: every node in one
        // chunk, no chunk crossing a shard boundary.
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(100, 420, 3)).unwrap();
        for (n, shards) in
            [(1usize, 1usize), (15, 1), (16, 1), (17, 2), (90, 4), (100, 8), (33, 33)]
        {
            let map = rtk_index::ShardMap::even(n, shards);
            let ranges: Vec<(u32, u32)> =
                (0..map.shard_count()).map(|i| (map.range(i).start, map.range(i).end)).collect();
            let node_plan = ChunkPlan::from_ranges(&ranges);
            let edge_plan = ChunkPlan::edge_balanced(&ranges, &g);
            for (name, plan) in [("node", &node_plan), ("edge", &edge_plan)] {
                let mut seen = vec![0u32; n];
                for ci in 0..plan.total() {
                    let (lo, hi) = plan.chunk(ci).expect("in-range chunk");
                    assert!(lo < hi, "{name} n={n} shards={shards} ci={ci}");
                    let s = map.shard_of(lo);
                    assert_eq!(
                        map.shard_of(hi - 1),
                        s,
                        "{name} n={n} shards={shards} ci={ci}: chunk crosses a shard boundary"
                    );
                    for u in lo..hi {
                        seen[u as usize] += 1;
                    }
                }
                assert!(plan.chunk(plan.total()).is_none());
                assert!(seen.iter().all(|&c| c == 1), "{name} n={n} shards={shards}: {seen:?}");
            }
        }
    }

    #[test]
    fn edge_balanced_chunks_track_degree_weight() {
        // A graph with one very heavy node: its chunk must not also absorb
        // a long run of light nodes (the balance property), while an
        // edge-free stretch still gets cut into bounded pieces.
        let heavy: Vec<(u32, u32)> = (1..=200u32).map(|v| (0, v % 256)).collect();
        let g = GraphBuilder::from_edges(256, &heavy, DanglingPolicy::SelfLoop).unwrap();
        let plan = ChunkPlan::edge_balanced(&[(0, 256)], &g);
        assert!(plan.total() > 1, "heavy graph should split into several chunks");
        let (lo, hi) = plan.chunk(0).expect("first chunk");
        assert_eq!(lo, 0);
        assert_eq!(hi, 1, "the 200-edge hub saturates its chunk alone");
        for ci in 1..plan.total() {
            let (lo, hi) = plan.chunk(ci).expect("chunk");
            // Every light node weighs 1 + 1 (self loop or one in-edge), so
            // chunks stay near SCREEN_CHUNK_EDGES / 2 nodes wide.
            assert!((hi - lo) as usize <= SCREEN_CHUNK_EDGES, "ci={ci}: {lo}..{hi}");
        }
    }

    #[test]
    fn chunk_strategies_agree_bitwise() {
        // The chunk layout is a scheduling knob: answers, proximities, and
        // counter stats are identical for both strategies, at any thread
        // count, in both frozen and update mode.
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(250, 1100, 31)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 8,
            hub_selection: HubSelection::DegreeBased { b: 6 },
            threads: 1,
            shards: 3,
            ..Default::default()
        };
        let frozen = ReverseIndex::build(&t, config.clone()).unwrap();
        let mut session = QueryEngine::new(&frozen);
        for q in [0u32, 49, 123] {
            let base = session
                .query_frozen(
                    &t,
                    &frozen,
                    q,
                    8,
                    &QueryOptions {
                        query_threads: 1,
                        chunking: ChunkStrategy::NodeCount,
                        ..Default::default()
                    },
                )
                .unwrap();
            for threads in [1usize, 2, 4, 8] {
                for chunking in [ChunkStrategy::EdgeBalanced, ChunkStrategy::NodeCount] {
                    let opts =
                        QueryOptions { query_threads: threads, chunking, ..Default::default() };
                    let got = session.query_frozen(&t, &frozen, q, 8, &opts).unwrap();
                    assert_eq!(got.nodes(), base.nodes(), "q={q} t={threads} {chunking:?}");
                    for (a, b) in got.proximities().iter().zip(base.proximities()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "q={q} t={threads} {chunking:?}");
                    }
                    assert_eq!(got.stats().candidates, base.stats().candidates);
                    assert_eq!(got.stats().hits, base.stats().hits);
                    assert_eq!(got.stats().refined_nodes, base.stats().refined_nodes);
                    assert_eq!(got.stats().refine_iterations, base.stats().refine_iterations);
                }
            }
        }

        // Update mode: the post-commit index is also layout-independent.
        let mut by_node = ReverseIndex::build(&t, config.clone()).unwrap();
        let mut by_edge = ReverseIndex::build(&t, config).unwrap();
        for (index, chunking) in
            [(&mut by_node, ChunkStrategy::NodeCount), (&mut by_edge, ChunkStrategy::EdgeBalanced)]
        {
            let opts = QueryOptions { query_threads: 4, chunking, ..Default::default() };
            for q in [0u32, 49, 123] {
                session.query(&t, index, q, 8, &opts).unwrap();
            }
        }
        for u in 0..250u32 {
            assert_eq!(by_node.state(u), by_edge.state(u), "node {u}");
        }
    }

    #[test]
    fn queries_share_the_global_worker_pool_without_respawning() {
        // The acceptance criterion for the persistent pool: thread spawns
        // are O(pool size) per process, not O(queries) or O(refinement
        // iterations). Warm the pool up, then hammer it with parallel
        // queries and batches — the spawn counter must not move.
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(200, 800, 17)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 6,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            shards: 2,
            ..Default::default()
        };
        let index = ReverseIndex::build(&t, config).unwrap();
        let mut session = QueryEngine::new(&index);
        let opts = QueryOptions { query_threads: 8, ..Default::default() };
        session.query_frozen(&t, &index, 0, 6, &opts).unwrap(); // warm-up
        let spawned = rtk_sparse::WorkerPool::global().threads_spawned();
        assert_eq!(spawned, rtk_sparse::WorkerPool::global().size());
        for q in 0..50u32 {
            session.query_frozen(&t, &index, (q * 7) % 200, 6, &opts).unwrap();
        }
        let batch: Vec<(u32, usize)> = (0..30u32).map(|i| ((i * 11) % 200, 6)).collect();
        session.query_batch(&t, &index, &batch, &opts).unwrap();
        assert_eq!(
            rtk_sparse::WorkerPool::global().threads_spawned(),
            spawned,
            "queries must reuse pool workers, never spawn new threads"
        );
    }

    #[test]
    fn shard_scoped_scans_merge_to_the_full_answer_bitwise() {
        // The multi-process invariant: query_shard once per shard, partial
        // results concatenated in shard order and counters summed, equals
        // the single-process query — results, proximities, stats, and (in
        // update mode) the post-commit index.
        let g = rtk_graph::gen::rmat(&rtk_graph::gen::RmatConfig::new(150, 600, 9)).unwrap();
        let t = TransitionMatrix::new(&g);
        let config = IndexConfig {
            max_k: 8,
            hub_selection: HubSelection::DegreeBased { b: 5 },
            threads: 1,
            shards: 4,
            ..Default::default()
        };
        for update in [false, true] {
            let mut whole = ReverseIndex::build(&t, config.clone()).unwrap();
            let mut sharded = ReverseIndex::build(&t, config.clone()).unwrap();
            let mut session = QueryEngine::new(&whole);
            let opts = QueryOptions { update_index: update, ..Default::default() };
            for q in [0u32, 31, 77, 149] {
                let expect = if update {
                    session.query(&t, &mut whole, q, 5, &opts).unwrap()
                } else {
                    session.query_frozen(&t, &whole, q, 5, &opts).unwrap()
                };

                let mut nodes = Vec::new();
                let mut proximities = Vec::new();
                let mut stats = QueryStats::default();
                let mut all_commits = Vec::new();
                let alpha = sharded.config().alpha();
                let max_k = sharded.max_k();
                for sid in 0..sharded.shard_count() {
                    let (partial, commits) = session
                        .query_shard(
                            &t,
                            sharded.hub_matrix(),
                            alpha,
                            max_k,
                            &sharded.shards()[sid],
                            q,
                            5,
                            &opts,
                        )
                        .unwrap();
                    // The partial covers only this shard's range.
                    let range = sharded.shard_map().range(sid);
                    assert!(partial.nodes().iter().all(|&u| range.contains(&u)));
                    nodes.extend_from_slice(partial.nodes());
                    proximities.extend_from_slice(partial.proximities());
                    stats.absorb(partial.stats());
                    all_commits.extend(commits);
                }
                sharded.commit_states(all_commits);

                assert_eq!(nodes, expect.nodes(), "q={q} update={update}");
                for (a, b) in proximities.iter().zip(expect.proximities()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "q={q} update={update}");
                }
                assert_eq!(stats.candidates, expect.stats().candidates);
                assert_eq!(stats.hits, expect.stats().hits);
                assert_eq!(stats.refined_nodes, expect.stats().refined_nodes);
                assert_eq!(stats.refine_iterations, expect.stats().refine_iterations);
            }
            if update {
                // Backend-local commits leave exactly the single-process index.
                for u in 0..150u32 {
                    assert_eq!(whole.state(u), sharded.state(u), "node {u}");
                }
            }
        }
    }

    #[test]
    fn query_shard_rejects_invalid_queries() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let session = QueryEngine::new(&index);
        let opts = QueryOptions::default();
        let hm = index.hub_matrix();
        let alpha = index.config().alpha();
        let shard = &index.shards()[0];
        assert!(matches!(
            session.query_shard(&t, hm, alpha, 3, shard, 0, 0, &opts),
            Err(QueryError::KOutOfRange { k: 0, .. })
        ));
        assert!(matches!(
            session.query_shard(&t, hm, alpha, 3, shard, 9, 1, &opts),
            Err(QueryError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn stats_rebuild_as_a_span_tree_with_exact_phase_sums() {
        let stats = QueryStats {
            candidates: 12,
            hits: 9,
            pruned_by_lower_bound: 80,
            refined_nodes: 3,
            refine_iterations: 5,
            exact_fallbacks: 1,
            pmpn_iterations: 17,
            pmpn_seconds: 0.002,
            screen_seconds: 0.006,
            total_seconds: 0.009,
            ..Default::default()
        };
        let trace = stats.to_trace("engine:reverse_topk");
        assert_eq!(trace.name, "engine:reverse_topk");
        let names: Vec<&str> = trace.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["pmpn_solve", "screen", "commit"]);
        // Phases tile the root span: each starts where the previous ended
        // and durations sum exactly to the root duration.
        let mut cursor = 0.0;
        for child in &trace.children {
            assert_eq!(child.start_seconds, cursor, "{}", child.name);
            cursor += child.duration_seconds;
        }
        assert_eq!(cursor, trace.duration_seconds);
        assert_eq!(trace.duration_seconds, stats.total_seconds);
        let screen = &trace.children[1];
        assert!(screen.annotations.iter().any(|(k, v)| k == "candidates" && v == "12"));
        assert!(screen.annotations.iter().any(|(k, _)| k == "exact_fallbacks"));
    }

    #[test]
    fn scratch_pool_is_reused_across_queries() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let mut index = ReverseIndex::build(&t, toy_index_config()).unwrap();
        let mut session = QueryEngine::new(&index);
        let opts = QueryOptions { query_threads: 1, ..Default::default() };
        session.query(&t, &mut index, 0, 2, &opts).unwrap();
        let after_first = session.scratch.idle();
        assert_eq!(after_first, 1, "serial query should park one scratch");
        session.query(&t, &mut index, 1, 2, &opts).unwrap();
        assert_eq!(session.scratch.idle(), 1, "scratch must be recycled, not re-made");
    }
}
