//! Query error type.

/// Errors produced when validating a reverse top-k query.
#[derive(Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Requested `k` exceeds the `K` the index was built for (or is zero).
    KOutOfRange {
        /// Requested `k`.
        k: usize,
        /// Maximum supported by the index.
        max_k: usize,
    },
    /// Query node id is outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: u32,
        /// Number of nodes.
        node_count: usize,
    },
    /// The index was built for a different graph (node counts differ).
    GraphMismatch {
        /// Nodes in the index.
        index_nodes: usize,
        /// Nodes in the graph.
        graph_nodes: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::KOutOfRange { k, max_k } => {
                write!(f, "k = {k} outside the supported range 1..={max_k}")
            }
            QueryError::NodeOutOfRange { node, node_count } => {
                write!(f, "query node {node} out of range (graph has {node_count} nodes)")
            }
            QueryError::GraphMismatch { index_nodes, graph_nodes } => {
                write!(f, "index built for {index_nodes} nodes, graph has {graph_nodes}")
            }
        }
    }
}

impl std::error::Error for QueryError {}
