//! Upper Bound Computation — Algorithm 3 (paper §4.2.2, Eqs. 16–18).
//!
//! Given the descending lower-bound staircase `p̂^t_u(1:k)` and the
//! undistributed mass `‖r^t_u‖₁`, the best case for the *k-th largest* final
//! proximity is that all remaining mass lands on the current top-k entries so
//! as to maximize the k-th value — geometrically, pouring `‖r‖₁` of ink into
//! the container formed by the staircase's top `k` steps and reading off the
//! level (Figures 3–4 of the paper). The result is a true upper bound of
//! `p^kmax_u` that only tightens as refinement grows the staircase and
//! shrinks the residue (Prop. 4).

/// Computes the upper bound `ub^t_u` of the k-th largest proximity.
///
/// * `staircase` — the first `k` lower bounds in descending order,
///   zero-padded to exactly `k` entries
///   (see `DescendingTopK::prefix_values`);
/// * `residual` — the undistributed mass: `‖r‖₁` (paper-faithful) or
///   `‖r‖₁ + Σ_h s(h)·d_h` (strict mode, covering hub rounding deficits).
///
/// # Panics
/// Panics if `staircase.len() != k`, `k == 0`, the staircase is not
/// descending, or `residual` is negative.
pub fn upper_bound_kth(staircase: &[f64], residual: f64, k: usize) -> f64 {
    assert!(k >= 1, "upper_bound_kth: k must be ≥ 1");
    assert_eq!(staircase.len(), k, "upper_bound_kth: staircase must have exactly k entries");
    assert!(residual >= 0.0, "upper_bound_kth: negative residual {residual}");
    debug_assert!(
        staircase.windows(2).all(|w| w[0] >= w[1]),
        "upper_bound_kth: staircase must be descending"
    );

    // z_j: ink needed for the level to reach step k−j (Eq. 17). Scan j
    // upward until the residual fits between z_{j−1} and z_j (Eq. 18 line 1).
    let mut z_prev = 0.0_f64;
    for j in 1..k {
        // Δ_{k−j} = p̂(k−j) − p̂(k−j+1)   (1-based; slices are 0-based)
        let delta = staircase[k - j - 1] - staircase[k - j];
        let z_j = z_prev + j as f64 * delta;
        if residual <= z_j {
            // Level lands between steps k−j and k−j+1: fill j steps evenly.
            return staircase[k - j - 1] - (z_j - residual) / j as f64;
        }
        z_prev = z_j;
    }
    // Residual submerges the whole staircase (Eq. 18 line 2 / Figure 4).
    staircase[0] + (residual - z_prev) / k as f64
}

/// Brute-force reference: simulate pouring `residual` in tiny increments
/// (test oracle; `O(k / step)`).
#[cfg(test)]
fn pour_reference(staircase: &[f64], residual: f64, step: f64) -> f64 {
    let k = staircase.len();
    let mut levels: Vec<f64> = staircase.to_vec();
    let mut remaining = residual;
    while remaining > 1e-15 {
        // Raise the currently-lowest levels by `step` (or what's left).
        let min = levels.iter().cloned().fold(f64::INFINITY, f64::min);
        let at_min: Vec<usize> = (0..k).filter(|&i| (levels[i] - min).abs() < 1e-12).collect();
        let pour = (step * at_min.len() as f64).min(remaining);
        for &i in &at_min {
            levels[i] += pour / at_min.len() as f64;
        }
        remaining -= pour;
    }
    levels.iter().cloned().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_residual_returns_kth_value() {
        let s = [0.5, 0.3, 0.2];
        assert_eq!(upper_bound_kth(&s, 0.0, 3), 0.2);
    }

    #[test]
    fn small_residual_fills_lowest_step() {
        // k=2, staircase [0.5, 0.3]: z₁ = 1·(0.5−0.3) = 0.2. Residual 0.1
        // lifts the 2nd step halfway: ub = 0.5 − (0.2−0.1)/1 = 0.4.
        let s = [0.5, 0.3];
        assert!((upper_bound_kth(&s, 0.1, 2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn large_residual_floods_the_staircase() {
        // Residual beyond z_{k−1} spreads evenly over all k steps (Fig. 4).
        let s = [0.5, 0.3];
        // z₁ = 0.2; residual 0.6 ⇒ ub = 0.5 + (0.6−0.2)/2 = 0.7.
        assert!((upper_bound_kth(&s, 0.6, 2) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn k_equals_one_adds_everything_to_the_top() {
        assert!((upper_bound_kth(&[0.4], 0.35, 1) - 0.75).abs() < 1e-12);
        assert_eq!(upper_bound_kth(&[0.4], 0.0, 1), 0.4);
    }

    #[test]
    fn flat_staircase_distributes_evenly() {
        let s = [0.25, 0.25, 0.25, 0.25];
        assert!((upper_bound_kth(&s, 0.4, 4) - 0.35).abs() < 1e-12);
    }

    #[test]
    fn zero_padded_staircase_from_short_lists() {
        // A node with only 1 known proximity queried at k=3.
        let s = [0.6, 0.0, 0.0];
        // z₁ = 1·(0.0−0.0) = 0, z₂ = 0 + 2·(0.6−0.0) = 1.2.
        // Residual 0.4 ⇒ lands in (z₁, z₂]: ub = 0.6 − (1.2−0.4)/2 = 0.2.
        assert!((upper_bound_kth(&s, 0.4, 3) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn matches_paper_figure_walkthrough() {
        // Paper §4.2.3 example: node 4 (1-based), k=2, staircase [0.19, 0.17],
        // ‖r‖ = 0.36 ⇒ z₁ = 0.02, flood: ub = 0.19 + (0.36−0.02)/2 = 0.36.
        let ub = upper_bound_kth(&[0.19, 0.17], 0.36, 2);
        assert!((ub - 0.36).abs() < 1e-12, "ub = {ub}");
    }

    #[test]
    fn agrees_with_pour_simulation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let k = rng.gen_range(1..8);
            let mut s: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..0.5)).collect();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let residual = rng.gen_range(0.0..1.0);
            let fast = upper_bound_kth(&s, residual, k);
            let slow = pour_reference(&s, residual, 1e-4);
            assert!(
                (fast - slow).abs() < 1e-3,
                "k={k} staircase={s:?} residual={residual}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn monotone_in_residual() {
        let s = [0.5, 0.3, 0.1, 0.05, 0.01];
        let mut prev = upper_bound_kth(&s, 0.0, 5);
        for i in 1..=100 {
            let ub = upper_bound_kth(&s, i as f64 / 100.0, 5);
            assert!(ub >= prev - 1e-15);
            prev = ub;
        }
    }

    #[test]
    fn never_below_kth_lower_bound() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let k = rng.gen_range(1..10);
            let mut s: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..1.0)).collect();
            s.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let residual = rng.gen_range(0.0..1.0);
            assert!(upper_bound_kth(&s, residual, k) >= s[k - 1] - 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "exactly k entries")]
    fn rejects_wrong_length() {
        upper_bound_kth(&[0.5, 0.3], 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        upper_bound_kth(&[], 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "negative residual")]
    fn rejects_negative_residual() {
        upper_bound_kth(&[0.5], -0.1, 1);
    }
}
