//! Online reverse top-k query processing (paper §4.2).
//!
//! A query `(q, k)` runs in two steps:
//!
//! 1. **PMPN** computes the exact proximities `p_u(q)` from every node to the
//!    query (Alg. 2, re-exported from `rtk-rwr`);
//! 2. every node is screened against the offline index: pruned when its
//!    `k`-th lower bound already exceeds `p_u(q)`, confirmed when `p_u(q)`
//!    reaches the staircase **upper bound** of Alg. 3, and otherwise
//!    *refined* — its stored BCA is resumed one iteration at a time until
//!    the bounds decide (Alg. 4). Refinements can be written back into the
//!    index (`update` mode, §4.2.3), making future queries cheaper.
//!
//! The crate also ships the paper's exact baselines ([`baseline::Ibf`],
//! [`baseline::Fbf`], [`baseline::brute_force_reverse_topk`]) and a forward
//! top-k RWR search ([`baseline::top_k_rwr`]) used by the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod error;
pub mod query;
pub mod topk;
pub mod upper_bound;

pub use error::QueryError;
pub use query::{
    BoundMode, ChunkStrategy, QueryEngine, QueryOptions, QueryResult, QueryStats, ScreenScope,
    ShardQueryOutput,
};
pub use rtk_approx::{ApproxParams, ApproxUsage};
pub use topk::{top_k_rwr_early, TopkReport};
pub use upper_bound::upper_bound_kth;
