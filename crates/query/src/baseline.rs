//! Exact baselines (paper §3 and §5.3's IBF/FBF) and forward top-k search.
//!
//! * [`brute_force_reverse_topk`] — the definitional algorithm: compute every
//!   `p_u`, check `p_u(q) ≥ p̂_u(k)`. `O(n·m·iters)` per query; test oracle.
//! * [`Ibf`] — *Infeasible Brute Force*: materialize the full `n×n` proximity
//!   matrix once, then answer queries in `O(n)` by reading row `q`. Memory
//!   `O(n²)` — the paper names it infeasible because that is 6.7 TB on
//!   Web-google.
//! * [`Fbf`] — *Feasible Brute Force*: precompute only each node's exact
//!   top-`K` proximity values; per query run PMPN and compare. Memory
//!   `O(nK)`, but the precomputation still costs a full matrix's work.
//! * [`top_k_rwr`] — plain forward top-k proximity search from one node
//!   (the query the paper's related work §6.2 studies), used by examples.

use crate::error::QueryError;
use crate::query::TIE_EPSILON;
use rtk_graph::TransitionMatrix;
use rtk_rwr::power::proximity_from;
use rtk_rwr::RwrParams;
use rtk_sparse::{top_k_of_dense, DescendingTopK};
use std::time::Instant;

/// Forward top-k RWR proximity search: the `k` nodes closest to `u`,
/// descending by proximity (ties by smaller id). The source itself is
/// included when it ranks (as in the paper's proximity model). Only
/// *reachable* nodes (positive proximity) are returned, so the list is
/// shorter than `k` when `u` reaches fewer than `k` nodes.
pub fn top_k_rwr(
    transition: &TransitionMatrix<'_>,
    u: u32,
    k: usize,
    params: &RwrParams,
) -> Vec<(u32, f64)> {
    let (p, _) = proximity_from(transition, u, params);
    rtk_sparse::top_k_of_pairs(
        p.iter().enumerate().filter(|&(_, &v)| v > 0.0).map(|(i, &v)| (i as u32, v)),
        k,
    )
}

/// Definitional reverse top-k: recompute everything per query. Returns
/// ascending result node ids. The `O(n)` proximity-vector computations make
/// this the paper's "too expensive" baseline — use only on small graphs.
pub fn brute_force_reverse_topk(
    transition: &TransitionMatrix<'_>,
    q: u32,
    k: usize,
    params: &RwrParams,
) -> Vec<u32> {
    let n = transition.node_count();
    assert!((q as usize) < n, "query {q} out of range");
    assert!(k >= 1, "k must be ≥ 1");
    let mut result = Vec::new();
    for u in 0..n as u32 {
        let (p, _) = proximity_from(transition, u, params);
        let kth = rtk_sparse::dense::kth_largest(&p, k);
        // Positive proximity required: top-k sets contain reachable nodes
        // only (matches the online algorithm's convention).
        if p[q as usize] > TIE_EPSILON && p[q as usize] >= kth - TIE_EPSILON {
            result.push(u);
        }
    }
    result
}

/// Infeasible Brute Force: full `P` in memory (`O(n²)` f64s).
pub struct Ibf {
    /// `columns[u][v] = p_u(v)`.
    columns: Vec<Vec<f64>>,
    /// Exact descending top-K values per node (thresholds).
    top_k: Vec<DescendingTopK>,
    max_k: usize,
    build_seconds: f64,
}

impl Ibf {
    /// Hard cap keeping the `O(n²)` matrix within laptop memory.
    pub const MAX_NODES: usize = 20_000;

    /// Computes the entire proximity matrix column by column (power method).
    ///
    /// # Panics
    /// Panics when the graph exceeds [`Self::MAX_NODES`] nodes.
    pub fn build(transition: &TransitionMatrix<'_>, max_k: usize, params: &RwrParams) -> Self {
        let n = transition.node_count();
        assert!(
            n <= Self::MAX_NODES,
            "IBF limited to {} nodes (got {n}); that is the point the paper makes",
            Self::MAX_NODES
        );
        assert!(max_k >= 1);
        let t0 = Instant::now();
        let mut columns = Vec::with_capacity(n);
        let mut top_k = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let (p, _) = proximity_from(transition, u, params);
            top_k.push(DescendingTopK::from_sorted(top_k_of_dense(&p, max_k), max_k));
            columns.push(p);
        }
        Self { columns, top_k, max_k, build_seconds: t0.elapsed().as_secs_f64() }
    }

    /// Seconds spent materializing `P`.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Bytes held by the dense matrix.
    pub fn matrix_bytes(&self) -> usize {
        self.columns.len() * self.columns.first().map_or(0, |c| c.len()) * 8
    }

    /// Answers a reverse top-k query by scanning row `q` (`O(n)`).
    pub fn query(&self, q: u32, k: usize) -> Result<Vec<u32>, QueryError> {
        let n = self.columns.len();
        if k == 0 || k > self.max_k {
            return Err(QueryError::KOutOfRange { k, max_k: self.max_k });
        }
        if q as usize >= n {
            return Err(QueryError::NodeOutOfRange { node: q, node_count: n });
        }
        let mut result = Vec::new();
        for u in 0..n {
            let p = self.columns[u][q as usize];
            if p > TIE_EPSILON && p >= self.top_k[u].kth_value(k) - TIE_EPSILON {
                result.push(u as u32);
            }
        }
        Ok(result)
    }
}

/// Feasible Brute Force: exact top-K thresholds per node + PMPN per query.
pub struct Fbf {
    top_k: Vec<DescendingTopK>,
    max_k: usize,
    params: RwrParams,
    build_seconds: f64,
}

impl Fbf {
    /// Computes every node's exact top-K proximity values (same work as
    /// [`Ibf::build`], `O(nK)` memory).
    pub fn build(transition: &TransitionMatrix<'_>, max_k: usize, params: &RwrParams) -> Self {
        assert!(max_k >= 1);
        let n = transition.node_count();
        let t0 = Instant::now();
        let mut top_k = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let (p, _) = proximity_from(transition, u, params);
            top_k.push(DescendingTopK::from_sorted(top_k_of_dense(&p, max_k), max_k));
        }
        Self { top_k, max_k, params: *params, build_seconds: t0.elapsed().as_secs_f64() }
    }

    /// Seconds spent on the precomputation.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Bytes held by the thresholds.
    pub fn threshold_bytes(&self) -> usize {
        self.top_k.iter().map(|t| t.heap_bytes()).sum()
    }

    /// Answers a reverse top-k query: PMPN (§4.2.1) + threshold comparisons.
    pub fn query(
        &self,
        transition: &TransitionMatrix<'_>,
        q: u32,
        k: usize,
    ) -> Result<Vec<u32>, QueryError> {
        let n = self.top_k.len();
        if transition.node_count() != n {
            return Err(QueryError::GraphMismatch {
                index_nodes: n,
                graph_nodes: transition.node_count(),
            });
        }
        if k == 0 || k > self.max_k {
            return Err(QueryError::KOutOfRange { k, max_k: self.max_k });
        }
        if q as usize >= n {
            return Err(QueryError::NodeOutOfRange { node: q, node_count: n });
        }
        let (to_q, _) = rtk_rwr::pmpn::proximity_to(transition, q, &self.params);
        let mut result = Vec::new();
        for (u, threshold) in self.top_k.iter().enumerate() {
            if to_q[u] > TIE_EPSILON && to_q[u] >= threshold.kth_value(k) - TIE_EPSILON {
                result.push(u as u32);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtk_graph::{DanglingPolicy, DiGraph, GraphBuilder};

    fn toy() -> DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn brute_force_matches_paper_walkthrough() {
        // §4.2.3: reverse top-2 of node 1 (1-based) is {1, 2, 5}.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let r = brute_force_reverse_topk(&t, 0, 2, &RwrParams::default());
        assert_eq!(r, vec![0, 1, 4]);
    }

    #[test]
    fn figure_1_reverse_top2_of_each_node() {
        // Shaded entries of Figure 1: each column's top-2. Reverse top-2 per
        // row: node1→{1,2,5}(wait: row 1 shaded in p1,p2,p3? compute directly)
        // We simply cross-check BF against IBF and FBF on all nodes.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let ibf = Ibf::build(&t, 3, &params);
        let fbf = Fbf::build(&t, 3, &params);
        for q in 0..6u32 {
            for k in 1..=3usize {
                let bf = brute_force_reverse_topk(&t, q, k, &params);
                assert_eq!(ibf.query(q, k).unwrap(), bf, "IBF q={q} k={k}");
                assert_eq!(fbf.query(&t, q, k).unwrap(), bf, "FBF q={q} k={k}");
            }
        }
    }

    #[test]
    fn expected_result_size_is_about_k() {
        // The paper argues E[|result|] = k: summed over all queries, each
        // node contributes exactly k (top-k memberships are k per node).
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let params = RwrParams::default();
        let k = 2;
        let total: usize =
            (0..6u32).map(|q| brute_force_reverse_topk(&t, q, k, &params).len()).sum();
        assert_eq!(total, 6 * k);
    }

    #[test]
    fn top_k_rwr_matches_figure_1_shading() {
        // Figure 1: top-2 from node 3 (1-based) returns nodes 2 and 3.
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let top = top_k_rwr(&t, 2, 2, &RwrParams::default());
        let ids: Vec<u32> = top.iter().map(|&(u, _)| u).collect();
        assert_eq!(ids, vec![1, 2]);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    fn ibf_rejects_bad_queries() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let ibf = Ibf::build(&t, 2, &RwrParams::default());
        assert!(matches!(ibf.query(0, 0), Err(QueryError::KOutOfRange { .. })));
        assert!(matches!(ibf.query(0, 3), Err(QueryError::KOutOfRange { .. })));
        assert!(matches!(ibf.query(9, 1), Err(QueryError::NodeOutOfRange { .. })));
    }

    #[test]
    fn fbf_rejects_mismatched_graph() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let fbf = Fbf::build(&t, 2, &RwrParams::default());
        let other = GraphBuilder::from_edges(2, &[(0, 1), (1, 0)], DanglingPolicy::Error).unwrap();
        let t2 = TransitionMatrix::new(&other);
        assert!(matches!(fbf.query(&t2, 0, 1), Err(QueryError::GraphMismatch { .. })));
    }

    #[test]
    fn ibf_memory_accounting() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let ibf = Ibf::build(&t, 2, &RwrParams::default());
        assert_eq!(ibf.matrix_bytes(), 6 * 6 * 8);
        assert!(ibf.build_seconds() >= 0.0);
    }
}
