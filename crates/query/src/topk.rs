//! Forward top-k RWR search with early termination (BPA-style).
//!
//! The paper's related work (§6.2) describes Gupta et al.'s *Basic Push
//! Algorithm*: run bookmark coloring from the query node and stop as soon as
//! the top-k set is provably final, long before the proximities converge.
//! This module implements that idea on the batched BCA engine:
//!
//! after iteration `t`, every node's final proximity lies in
//! `[p^t_u(v), p^t_u(v) + ‖r‖₁]` (any remaining ink could land anywhere), so
//! the current top-k *set* is final once
//!
//! ```text
//! k-th largest lower bound ≥ (k+1)-th largest lower bound + ‖r‖₁
//! ```
//!
//! Exact ties between the k-th and (k+1)-th proximity can make that
//! condition unreachable; the search therefore also stops when
//! `‖r‖₁ < tie-epsilon`, at which point the set is exact within the same
//! [`crate::query::TIE_EPSILON`] used everywhere else.

use rtk_graph::TransitionMatrix;
use rtk_rwr::bca::{BcaEngine, BcaStop, PropagationStrategy};
use rtk_rwr::{BcaParams, HubSet};
use rtk_sparse::top_k_of_pairs;

/// Diagnostics of one early-terminating top-k search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopkReport {
    /// BCA iterations executed.
    pub iterations: u32,
    /// Residual ink when the search stopped.
    pub final_residual: f64,
    /// True when the separation condition proved the set final (false means
    /// the tie-epsilon fallback fired — the set is exact up to ties).
    pub separated: bool,
}

/// Early-terminating top-k proximity search from `u` (BPA-style).
///
/// Returns the top-k `(node, lower-bound proximity)` pairs in descending
/// order of their *current lower bounds* plus a [`TopkReport`]. The returned
/// **set** matches the exact power-method answer (up to value ties below
/// `1e-9`); the internal order and the reported values are those of the
/// final BCA iterate and may differ from the converged ranking — callers
/// needing exact values/order can run [`crate::baseline::top_k_rwr`]. This
/// set-exact/order-approximate contract is the classic BPA trade-off.
pub fn top_k_rwr_early(
    transition: &TransitionMatrix<'_>,
    u: u32,
    k: usize,
    params: &BcaParams,
) -> (Vec<(u32, f64)>, TopkReport) {
    let n = transition.node_count();
    assert!((u as usize) < n, "top_k_rwr_early: node {u} out of range");
    assert!(k >= 1, "top_k_rwr_early: k must be ≥ 1");
    params.validate();

    let mut engine = BcaEngine::new(HubSet::empty(n), *params, PropagationStrategy::BatchThreshold);
    // Run one iteration at a time, testing the separation condition between
    // iterations. `residue_norm: 0.0` makes each resume run exactly one step.
    let step = BcaStop { residue_norm: 0.0, max_iterations: 1 };
    let mut snapshot = engine.run_from(transition, u, &step);
    let mut iterations = 1u32;
    let tie_eps = crate::query::TIE_EPSILON;

    loop {
        let residual = snapshot.residue_norm();
        // Top k+1 retained values decide both the set and the separation.
        let top = top_k_of_pairs(snapshot.retained.iter(), k + 1);
        let kth = top.get(k - 1).map_or(0.0, |&(_, v)| v);
        let next = top.get(k).map_or(0.0, |&(_, v)| v);
        let separated = top.len() >= k && kth >= next + residual;
        if separated || residual < tie_eps || iterations >= params.max_iterations {
            let mut result = top;
            result.truncate(k);
            return (result, TopkReport { iterations, final_residual: residual, separated });
        }
        let executed = engine.resume(transition, &mut snapshot, &step);
        if executed == 0 {
            let mut result = top_k_of_pairs(snapshot.retained.iter(), k);
            result.truncate(k);
            return (result, TopkReport { iterations, final_residual: residual, separated: false });
        }
        iterations += executed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::top_k_rwr;
    use rtk_graph::gen::{rmat, scale_free, RmatConfig, ScaleFreeConfig};
    use rtk_graph::{DanglingPolicy, GraphBuilder};
    use rtk_rwr::RwrParams;

    fn toy() -> rtk_graph::DiGraph {
        GraphBuilder::from_edges(
            6,
            &[
                (0, 1),
                (0, 3),
                (0, 5),
                (1, 0),
                (1, 2),
                (2, 0),
                (2, 1),
                (3, 1),
                (3, 4),
                (4, 1),
                (5, 1),
                (5, 3),
            ],
            DanglingPolicy::Error,
        )
        .unwrap()
    }

    fn bpa_params() -> BcaParams {
        BcaParams {
            propagation_threshold: 1e-7,
            residue_threshold: 0.0,
            max_iterations: 100_000,
            ..Default::default()
        }
    }

    fn sorted_ids(pairs: &[(u32, f64)]) -> Vec<u32> {
        let mut ids: Vec<u32> = pairs.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_exact_top_k_set_on_toy() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        for u in 0..6u32 {
            for k in [1usize, 2, 3] {
                let (early, report) = top_k_rwr_early(&t, u, k, &bpa_params());
                let exact = top_k_rwr(&t, u, k, &RwrParams::default());
                assert_eq!(sorted_ids(&early), sorted_ids(&exact), "u={u} k={k} report={report:?}");
            }
        }
    }

    #[test]
    fn matches_exact_top_k_set_on_random_graphs() {
        for seed in [3u64, 9] {
            let g = rmat(&RmatConfig::new(200, 800, seed)).unwrap();
            let t = TransitionMatrix::new(&g);
            for u in [0u32, 50, 150] {
                let (early, _) = top_k_rwr_early(&t, u, 5, &bpa_params());
                let exact = top_k_rwr(&t, u, 5, &RwrParams::default());
                assert_eq!(sorted_ids(&early), sorted_ids(&exact), "seed={seed} u={u}");
            }
        }
    }

    #[test]
    fn usually_terminates_early() {
        // The point of BPA: far fewer iterations than full convergence.
        let g = scale_free(&ScaleFreeConfig::new(500, 4, 2)).unwrap();
        let t = TransitionMatrix::new(&g);
        let (_, report) = top_k_rwr_early(&t, 123, 5, &bpa_params());
        assert!(report.separated, "expected separation before exhaustion");
        // Full convergence at η=1e-7 takes hundreds of iterations; BPA
        // should stop in well under a hundred.
        assert!(report.iterations < 100, "iterations {}", report.iterations);
    }

    #[test]
    fn values_are_lower_bounds_of_exact() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        let exact = rtk_rwr::exact::proximity_matrix_dense(&t, 0.15);
        let (early, _) = top_k_rwr_early(&t, 2, 3, &bpa_params());
        for (v, lb) in early {
            assert!(lb <= exact[2][v as usize] + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_source() {
        let g = toy();
        let t = TransitionMatrix::new(&g);
        top_k_rwr_early(&t, 6, 2, &bpa_params());
    }
}
